"""RPR105 trigger: a span opened outside any with-statement."""


def process(item):
    return item


def record(tracer, items):
    span = tracer.span("work")
    for item in items:
        process(item)
    return span
