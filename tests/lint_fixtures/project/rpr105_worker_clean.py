"""RPR105 worker clean: worker-side spans close in a ``finally``.

The capture pattern from ``repro.sweep.pool._run_chunk``: the span must
straddle the per-point dispatch, so a with-block cannot hold it — an
explicit ``close()`` in a ``finally`` guarantees the exception path.
"""

from concurrent.futures import ProcessPoolExecutor


def process(item):
    return item


def run_chunk(tracer, items):
    span = tracer.span("chunk")
    span.open()
    try:
        return [process(item) for item in items]
    finally:
        span.close()


def run_chunk_with(tracer, items):
    with tracer.span("chunk"):
        return [process(item) for item in items]


def sweep(tracer, chunks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_chunk, tracer, chunk) for chunk in chunks]
    return [future.result() for future in futures]
