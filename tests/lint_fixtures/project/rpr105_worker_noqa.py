"""RPR105 worker noqa: the open worker span carries a justification."""

from concurrent.futures import ProcessPoolExecutor


def process(item):
    return item


def run_chunk(tracer, items):
    span = tracer.span("chunk")  # repro: noqa[RPR105] closed by the pool teardown
    span.open()
    return [process(item) for item in items]


def sweep(tracer, chunks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_chunk, tracer, chunk) for chunk in chunks]
    return [future.result() for future in futures]
