"""RPR105 worker trigger: a pool worker opens a span it never closes."""

from concurrent.futures import ProcessPoolExecutor


def process(item):
    return item


def run_chunk(tracer, items):
    span = tracer.span("chunk")
    span.open()
    out = [process(item) for item in items]
    span.close()  # skipped when process() raises: the span is lost
    return out


def sweep(tracer, chunks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_chunk, tracer, chunk) for chunk in chunks]
    return [future.result() for future in futures]
