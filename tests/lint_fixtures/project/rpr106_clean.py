"""RPR106 clean: retries are paced by backoff or bounded by a budget."""

import time


def drain_with_backoff(task_queue):
    delay = 0.1
    while True:
        try:
            return task_queue.receive()
        except ConnectionError:
            time.sleep(delay)  # paced: backoff between attempts
            delay *= 2.0


def drain_with_budget(task_queue):
    while True:
        try:
            return task_queue.receive()
        except ConnectionError:
            raise RuntimeError("queue unreachable") from None


def local_state_loop(counter):
    # Not a client: bare retry around plain attribute calls is fine.
    while True:
        try:
            return counter.get()
        except KeyError:
            continue
