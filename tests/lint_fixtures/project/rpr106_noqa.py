"""RPR106 noqa: the hot retry loop carries a justification."""


def drain(task_queue):
    while True:
        try:
            msg = task_queue.receive()  # repro: noqa[RPR106] queue is local
        except ConnectionError:
            continue
        if msg is None:
            return None
        return msg
