"""RPR106 trigger: hot-loop retry of a queue call, no backoff/budget."""


def drain(task_queue):
    while True:
        try:
            msg = task_queue.receive()
        except ConnectionError:
            continue  # immediate retry: hammers the service
        if msg is None:
            return None
        return msg
