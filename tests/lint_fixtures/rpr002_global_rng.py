"""Fixture: global RNG access (RPR002)."""

import random

import numpy as np


def draw_latency():
    jitter = random.random()
    sample = np.random.lognormal(mean=0.0, sigma=0.35)
    unseeded = np.random.default_rng()
    return jitter, sample, unseeded
