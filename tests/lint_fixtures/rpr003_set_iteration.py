"""Fixture: iteration over sets feeding scheduling order (RPR003)."""


def schedule_tasks(env, task_ids, extra):
    for task_id in set(task_ids):
        env.enqueue(task_id)
    return [env.enqueue(t) for t in {"a", "b", *extra}]
