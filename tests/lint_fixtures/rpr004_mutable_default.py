"""Fixture: mutable default arguments (RPR004)."""


def collect_records(record, seen=[]):
    seen.append(record)
    return seen


def merge_stats(stats, totals={}):
    totals.update(stats)
    return totals
