"""Fixture: float equality on simulated-time values (RPR005)."""


def is_due(env, message):
    if message.visible_at == env.now:
        return True
    return message.finished_time != 0.0
