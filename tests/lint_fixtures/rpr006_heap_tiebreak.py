"""Fixture: heap entries without a sequence tiebreaker (RPR006)."""

import heapq


def enqueue(heap, when, event):
    heapq.heappush(heap, (when, event))
