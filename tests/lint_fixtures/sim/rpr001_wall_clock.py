"""Fixture: wall-clock access inside simulation-scoped code (RPR001)."""

import time
from datetime import datetime
from time import perf_counter


def measure_service_time():
    started = time.time()
    checkpoint = perf_counter()
    stamp = datetime.now()
    return started, checkpoint, stamp
