# repro: noqa-file[RPR001] fixture isolates RPR007 from the plain rule
"""Fixture: wall-clock read inside a tracer span body in sim scope
(RPR007)."""

import time


def serve_task(tracer, env, task):
    with tracer.span("task.compute", track="worker"):
        started = time.perf_counter()
        task.run()
        return started, env.now
