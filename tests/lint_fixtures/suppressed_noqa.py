"""Fixture: violations silenced by repro noqa pragmas."""

# repro: noqa-file[RPR004]: fixture exercising file-level suppression

import random


def sample(values, bucket=[]):
    bucket.append(random.choice(values))  # repro: noqa[RPR002] fixture
    return bucket
