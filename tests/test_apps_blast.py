"""Tests for the miniature protein BLAST."""

import numpy as np
import pytest

from repro.apps.blast import (
    AMINO_ACIDS,
    BlastDatabase,
    BlastParams,
    blast_search,
    blosum62,
)
from repro.apps.fasta import FastaRecord


def random_protein(length, seed):
    rng = np.random.default_rng(seed)
    return "".join(AMINO_ACIDS[i] for i in rng.integers(0, 20, size=length))


def mutate(seq, rate, seed):
    rng = np.random.default_rng(seed)
    out = list(seq)
    for i in range(len(out)):
        if rng.random() < rate:
            out[i] = AMINO_ACIDS[rng.integers(0, 20)]
    return "".join(out)


@pytest.fixture(scope="module")
def database():
    records = [
        FastaRecord(id=f"prot{i}", seq=random_protein(300, seed=i))
        for i in range(25)
    ]
    return BlastDatabase(records)


class TestBlosum62:
    def test_symmetric(self):
        for a in AMINO_ACIDS:
            for b in AMINO_ACIDS:
                assert blosum62(a, b) == blosum62(b, a)

    def test_known_values(self):
        assert blosum62("A", "A") == 4
        assert blosum62("W", "W") == 11
        assert blosum62("A", "W") == -3
        assert blosum62("L", "I") == 2

    def test_diagonal_dominates(self):
        for a in AMINO_ACIDS:
            assert blosum62(a, a) == max(blosum62(a, b) for b in AMINO_ACIDS)


class TestDatabase:
    def test_index_covers_all_words(self, database):
        # Every 3-mer actually present must be indexed.
        for idx, seq in enumerate(database.seqs):
            word = seq[10:13].encode("ascii")
            encoded = bytes(
                database.encoded[idx][10:13].astype(np.uint8).tolist()
            )
            assert encoded in database.index

    def test_memory_footprint_scales_with_size(self):
        small = BlastDatabase(
            [FastaRecord(id="a", seq=random_protein(100, 1))]
        )
        large = BlastDatabase(
            [
                FastaRecord(id=f"s{i}", seq=random_protein(100, i))
                for i in range(20)
            ]
        )
        assert large.memory_bytes > small.memory_bytes

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            BlastDatabase([])

    def test_unknown_residue_rejected(self):
        with pytest.raises(ValueError, match="unknown amino acid"):
            BlastDatabase([FastaRecord(id="bad", seq="ACDEFGHIKB")])


class TestSearch:
    def test_exact_match_found_with_top_score(self, database):
        query = FastaRecord(id="q", seq=database.seqs[7][50:200])
        results = blast_search([query], database)
        hits = results["q"]
        assert hits, "exact substring must be found"
        assert hits[0].subject_id == "prot7"
        assert hits[0].identity == pytest.approx(1.0)
        assert hits[0].evalue < 1e-10

    def test_planted_homolog_recovered(self, database):
        # 80% identity homolog of prot3.
        homolog = mutate(database.seqs[3][20:260], rate=0.2, seed=99)
        query = FastaRecord(id="hom", seq=homolog)
        hits = blast_search([query], database)["hom"]
        assert hits
        assert hits[0].subject_id == "prot3"
        assert 0.6 < hits[0].identity < 1.0

    def test_random_query_has_no_strong_hits(self, database):
        query = FastaRecord(id="rand", seq=random_protein(200, seed=4242))
        hits = blast_search([query], database)["rand"]
        strong = [h for h in hits if h.evalue < 1e-6]
        assert strong == []

    def test_multiple_queries_keyed_by_id(self, database):
        queries = [
            FastaRecord(id="q1", seq=database.seqs[0][0:150]),
            FastaRecord(id="q2", seq=database.seqs[1][0:150]),
        ]
        results = blast_search(queries, database)
        assert set(results) == {"q1", "q2"}
        assert results["q1"][0].subject_id == "prot0"
        assert results["q2"][0].subject_id == "prot1"

    def test_threaded_search_matches_serial(self, database):
        queries = [
            FastaRecord(id=f"q{i}", seq=database.seqs[i][10:180])
            for i in range(6)
        ]
        serial = blast_search(queries, database, num_threads=1)
        threaded = blast_search(queries, database, num_threads=4)
        assert serial == threaded

    def test_hits_sorted_by_score(self, database):
        # A query matching one subject strongly and others weakly.
        query = FastaRecord(id="q", seq=database.seqs[5][0:250])
        hits = blast_search([query], database)["q"]
        scores = [h.raw_score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_one_hit_per_subject(self, database):
        query = FastaRecord(id="q", seq=database.seqs[9][0:200])
        hits = blast_search([query], database)["q"]
        subjects = [h.subject_id for h in hits]
        assert len(subjects) == len(set(subjects))

    def test_query_shorter_than_word_yields_nothing(self, database):
        query = FastaRecord(id="tiny", seq="AC")
        assert blast_search([query], database)["tiny"] == []

    def test_invalid_num_threads(self, database):
        with pytest.raises(ValueError):
            blast_search([], database, num_threads=0)

    def test_alignment_coordinates_consistent(self, database):
        query = FastaRecord(id="q", seq=database.seqs[2][30:230])
        hit = blast_search([query], database)["q"][0]
        assert 0 <= hit.query_start < hit.query_end <= len(query.seq)
        subject_len = len(database.seqs[2])
        assert 0 <= hit.subject_start < hit.subject_end <= subject_len
        assert hit.align_length >= hit.query_end - hit.query_start - 5

    def test_evalue_scales_with_database_size(self):
        subject = random_protein(300, seed=77)
        query = FastaRecord(id="q", seq=subject[50:150])
        small_db = BlastDatabase([FastaRecord(id="s", seq=subject)])
        padding = [
            FastaRecord(id=f"pad{i}", seq=random_protein(300, seed=1000 + i))
            for i in range(30)
        ]
        big_db = BlastDatabase([FastaRecord(id="s", seq=subject)] + padding)
        hit_small = blast_search([query], small_db)["q"][0]
        hit_big = next(
            h for h in blast_search([query], big_db)["q"] if h.subject_id == "s"
        )
        assert hit_big.evalue > hit_small.evalue

    def test_gapped_extension_uses_best_diagonal(self):
        """A subject with two homologous regions on different diagonals:
        the gapped stage must anchor on the stronger one."""
        strong = random_protein(120, seed=301)
        weak = mutate(strong[:60], rate=0.4, seed=302)
        subject = weak + random_protein(40, seed=303) + strong
        db = BlastDatabase([FastaRecord(id="s", seq=subject)])
        query = FastaRecord(id="q", seq=strong)
        (hit,) = blast_search([query], db)["q"]
        # The alignment must cover the strong (full-length, exact) copy.
        assert hit.identity > 0.95
        assert hit.align_length >= 110
        assert hit.subject_start >= len(weak)

    def test_neighborhood_words_expand_sensitivity(self, database):
        # A distant homolog found with neighbourhood seeding should score
        # at least as many hits as exact-word seeding.
        homolog = mutate(database.seqs[11][0:240], rate=0.30, seed=5)
        query = FastaRecord(id="far", seq=homolog)
        exact = blast_search([query], database, BlastParams())["far"]
        neigh = blast_search(
            [query], database, BlastParams(neighborhood_threshold=11)
        )["far"]
        assert len(neigh) >= len(exact)


class TestParams:
    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            BlastParams(word_size=1)

    def test_band_width_validation(self):
        with pytest.raises(ValueError):
            BlastParams(band_width=0)
