"""Tests for the miniature CAP3 assembler."""

import numpy as np
import pytest

from repro.apps.cap3 import (
    AssemblyResult,
    Cap3Params,
    assemble,
    trim_read,
)
from repro.apps.fasta import FastaRecord


def make_reads_from_genome(genome, read_len=100, step=50, error_rate=0.0, seed=0):
    """Tile a genome with overlapping reads (50% overlap by default)."""
    rng = np.random.default_rng(seed)
    bases = "ACGT"
    reads = []
    for n, start in enumerate(range(0, len(genome) - read_len + 1, step)):
        seq = list(genome[start : start + read_len])
        if error_rate:
            for i in range(len(seq)):
                if rng.random() < error_rate:
                    seq[i] = bases[rng.integers(4)]
        reads.append(FastaRecord(id=f"read{n}", seq="".join(seq)))
    return reads


def random_genome(length, seed=0):
    rng = np.random.default_rng(seed)
    return "".join("ACGT"[i] for i in rng.integers(0, 4, size=length))


class TestTrimming:
    def test_trims_leading_and_trailing_ns(self):
        r = FastaRecord(id="x", seq="NNN" + "ACGT" * 15 + "NN")
        trimmed = trim_read(r, min_length=40)
        assert trimmed.seq == "ACGT" * 15

    def test_trims_lowercase_soft_masked_ends(self):
        r = FastaRecord(id="x", seq="acgt" + "ACGT" * 15 + "tt")
        trimmed = trim_read(r, min_length=40)
        assert trimmed.seq == "ACGT" * 15

    def test_interior_lowercase_kept_and_uppercased(self):
        core = "ACGT" * 10 + "acgt" + "ACGT" * 10
        r = FastaRecord(id="x", seq=core)
        trimmed = trim_read(r, min_length=40)
        assert trimmed.seq == core.upper()

    def test_too_short_after_trim_returns_none(self):
        r = FastaRecord(id="x", seq="NNNNACGTACGTNNNN")
        assert trim_read(r, min_length=40) is None

    def test_interior_unknown_bases_become_n(self):
        seq = "ACGT" * 10 + "X" + "ACGT" * 10
        r = FastaRecord(id="x", seq=seq)
        trimmed = trim_read(r, min_length=40)
        assert "X" not in trimmed.seq
        assert trimmed.seq.count("N") == 1


class TestAssembly:
    def test_perfect_overlapping_reads_assemble_into_one_contig(self):
        genome = random_genome(500, seed=1)
        reads = make_reads_from_genome(genome, read_len=100, step=50)
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert result.singletons == []
        # The consensus must reconstruct the genome exactly.
        assert result.contigs[0].seq == genome

    def test_reads_with_errors_still_assemble(self):
        genome = random_genome(600, seed=2)
        reads = make_reads_from_genome(
            genome, read_len=120, step=60, error_rate=0.01, seed=3
        )
        result = assemble(reads)
        assert len(result.contigs) == 1
        contig = result.contigs[0].seq
        assert len(contig) == len(genome)
        # Coverage-2 majority voting cannot fix every error, but the
        # consensus must be close.
        matches = sum(a == b for a, b in zip(contig, genome))
        assert matches / len(genome) > 0.98

    def test_disjoint_genomes_form_separate_contigs(self):
        genome_a = random_genome(400, seed=4)
        genome_b = random_genome(400, seed=5)
        reads = make_reads_from_genome(genome_a, seed=6)
        reads_b = make_reads_from_genome(genome_b, seed=7)
        reads_b = [
            FastaRecord(id=f"b_{r.id}", seq=r.seq) for r in reads_b
        ]
        result = assemble(reads + reads_b)
        assert len(result.contigs) == 2
        assembled = {c.seq for c in result.contigs}
        assert genome_a in assembled
        assert genome_b in assembled

    def test_unrelated_reads_stay_singletons(self):
        reads = [
            FastaRecord(id=f"r{i}", seq=random_genome(80, seed=100 + i))
            for i in range(5)
        ]
        result = assemble(reads)
        assert result.contigs == []
        assert len(result.singletons) == 5

    def test_contained_read_attaches_to_container(self):
        genome = random_genome(300, seed=8)
        container = FastaRecord(id="big", seq=genome[0:200])
        contained = FastaRecord(id="small", seq=genome[50:150])
        extender = FastaRecord(id="ext", seq=genome[150:300])
        result = assemble([container, contained, extender])
        placed = {rid for c in result.contigs for rid, _ in c.reads}
        assert "small" in placed
        assert result.singletons == []

    def test_layout_offsets_are_consistent(self):
        genome = random_genome(500, seed=9)
        reads = make_reads_from_genome(genome, read_len=100, step=50)
        result = assemble(reads)
        (contig,) = result.contigs
        for read_id, offset in contig.reads:
            idx = int(read_id.removeprefix("read"))
            assert offset == idx * 50

    def test_coverage_track(self):
        """50%-overlap tiling: depth 2 in the interior, 1 at the ends."""
        genome = random_genome(500, seed=15)
        reads = make_reads_from_genome(genome, read_len=100, step=50)
        (contig,) = assemble(reads).contigs
        assert len(contig.coverage) == len(contig.seq)
        assert contig.coverage[0] == 1  # only the first read covers pos 0
        assert contig.coverage[250] == 2  # interior: two reads deep
        assert contig.min_coverage() == 1
        assert 1.5 < contig.mean_coverage() < 2.0

    def test_stats_populated(self):
        genome = random_genome(400, seed=10)
        reads = make_reads_from_genome(genome)
        result = assemble(reads)
        stats = result.stats
        assert stats["reads_in"] == len(reads)
        assert stats["reads_after_trim"] == len(reads)
        assert stats["overlaps_accepted"] > 0
        assert stats["contigs"] == 1
        assert stats["contig_bases"] == len(genome)

    def test_empty_input(self):
        result = assemble([])
        assert result.contigs == []
        assert result.singletons == []
        assert result.stats["reads_in"] == 0

    def test_deterministic(self):
        genome = random_genome(500, seed=11)
        reads = make_reads_from_genome(genome, error_rate=0.01, seed=12)
        first = assemble(reads)
        second = assemble(reads)
        assert [c.seq for c in first.contigs] == [c.seq for c in second.contigs]
        assert [s.id for s in first.singletons] == [
            s.id for s in second.singletons
        ]

    def test_n50(self):
        result = AssemblyResult(
            contigs=[], singletons=[], stats={}
        )
        assert result.n50 == 0
        from repro.apps.cap3 import Contig

        result = AssemblyResult(
            contigs=[
                Contig(id="c1", seq="A" * 100),
                Contig(id="c2", seq="A" * 300),
                Contig(id="c3", seq="A" * 50),
            ],
            singletons=[],
        )
        # Total 450; half 225; longest (300) already covers it.
        assert result.n50 == 300


class TestParams:
    def test_min_overlap_vs_kmer_validation(self):
        with pytest.raises(ValueError):
            Cap3Params(min_overlap=8, kmer_size=12)

    def test_identity_bounds(self):
        with pytest.raises(ValueError):
            Cap3Params(min_identity=0.3)
        with pytest.raises(ValueError):
            Cap3Params(min_identity=1.1)

    def test_kmer_minimum(self):
        with pytest.raises(ValueError):
            Cap3Params(kmer_size=2, min_overlap=30)

    def test_stride_minimum(self):
        with pytest.raises(ValueError):
            Cap3Params(seed_stride=0)

    def test_higher_identity_threshold_rejects_noisy_overlaps(self):
        genome = random_genome(400, seed=13)
        reads = make_reads_from_genome(
            genome, read_len=100, step=50, error_rate=0.06, seed=14
        )
        strict = assemble(reads, Cap3Params(min_identity=0.99))
        lenient = assemble(reads, Cap3Params(min_identity=0.85))
        assert (
            strict.stats["overlaps_accepted"]
            <= lenient.stats["overlaps_accepted"]
        )
