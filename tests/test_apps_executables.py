"""Tests for the file-in/file-out executable wrappers."""

import numpy as np
import pytest

from repro.apps.blast import BlastDatabase
from repro.apps.executables import (
    BlastExecutable,
    Cap3Executable,
    GtmInterpolationExecutable,
)
from repro.apps.fasta import FastaRecord, read_fasta, write_fasta
from repro.apps.gtm import train_gtm


def random_genome(length, seed=0):
    rng = np.random.default_rng(seed)
    return "".join("ACGT"[i] for i in rng.integers(0, 4, size=length))


def random_protein(length, seed=0):
    from repro.apps.blast import AMINO_ACIDS

    rng = np.random.default_rng(seed)
    return "".join(AMINO_ACIDS[i] for i in rng.integers(0, 20, size=length))


class TestCap3Executable:
    def test_produces_contig_output(self, tmp_path):
        genome = random_genome(400, seed=1)
        reads = [
            FastaRecord(id=f"r{i}", seq=genome[s : s + 100])
            for i, s in enumerate(range(0, 301, 50))
        ]
        input_path = tmp_path / "task.fa"
        output_path = tmp_path / "task.out.fa"
        write_fasta(reads, input_path)
        Cap3Executable().run(input_path, output_path)
        out = read_fasta(output_path)
        assert out[0].id == "Contig1"
        assert out[0].seq == genome
        assert "reads=7" in out[0].description

    def test_idempotent_reexecution(self, tmp_path):
        """Re-running a task yields byte-identical output — the property
        the Classic Cloud fault-tolerance story depends on."""
        genome = random_genome(300, seed=2)
        reads = [
            FastaRecord(id=f"r{i}", seq=genome[s : s + 80])
            for i, s in enumerate(range(0, 221, 40))
        ]
        input_path = tmp_path / "in.fa"
        write_fasta(reads, input_path)
        out1, out2 = tmp_path / "o1.fa", tmp_path / "o2.fa"
        exe = Cap3Executable()
        exe.run(input_path, out1)
        exe.run(input_path, out2)
        assert out1.read_bytes() == out2.read_bytes()

    def test_fastq_input_quality_trimmed_then_assembled(self, tmp_path):
        from repro.apps.fastq import FastqRecord, write_fastq

        genome = random_genome(400, seed=21)
        records = []
        for i, start in enumerate(range(0, 301, 50)):
            seq = genome[start : start + 100] + "GGGGGG"  # bad tail
            quals = (38,) * 100 + (3,) * 6
            records.append(
                FastqRecord(id=f"r{i}", seq=seq, qualities=quals)
            )
        input_path = tmp_path / "reads.fastq"
        write_fastq(records, input_path)
        output_path = tmp_path / "asm.fa"
        Cap3Executable().run(input_path, output_path)
        out = read_fasta(output_path)
        assert out[0].id == "Contig1"
        assert out[0].seq == genome  # tails trimmed away, not assembled in

    def test_singletons_appear_in_output(self, tmp_path):
        reads = [
            FastaRecord(id="lone1", seq=random_genome(80, seed=10)),
            FastaRecord(id="lone2", seq=random_genome(80, seed=11)),
        ]
        input_path = tmp_path / "in.fa"
        write_fasta(reads, input_path)
        output_path = tmp_path / "out.fa"
        Cap3Executable().run(input_path, output_path)
        ids = [r.id for r in read_fasta(output_path)]
        assert set(ids) == {"lone1", "lone2"}


class TestBlastExecutable:
    @pytest.fixture(scope="class")
    def db(self):
        return BlastDatabase(
            [
                FastaRecord(id=f"prot{i}", seq=random_protein(250, seed=i))
                for i in range(10)
            ]
        )

    def test_tabular_output(self, tmp_path, db):
        query = FastaRecord(id="q1", seq=db.seqs[4][20:180])
        input_path = tmp_path / "q.fa"
        write_fasta([query], input_path)
        output_path = tmp_path / "hits.tsv"
        BlastExecutable(db).run(input_path, output_path)
        lines = output_path.read_text().strip().split("\n")
        fields = lines[0].split("\t")
        assert fields[0] == "q1"
        assert fields[1] == "prot4"
        assert float(fields[2]) == pytest.approx(100.0)
        assert int(fields[3]) >= 150
        assert float(fields[4]) < 1e-6  # e-value column

    def test_no_hits_writes_empty_file(self, tmp_path, db):
        query = FastaRecord(id="q", seq=random_protein(150, seed=999))
        input_path = tmp_path / "q.fa"
        write_fasta([query], input_path)
        output_path = tmp_path / "hits.tsv"
        BlastExecutable(db).run(input_path, output_path)
        content = output_path.read_text()
        strong = [
            line
            for line in content.strip().split("\n")
            if line and float(line.split("\t")[4]) < 1e-6
        ]
        assert strong == []

    def test_threaded_executable_matches_serial(self, tmp_path, db):
        queries = [
            FastaRecord(id=f"q{i}", seq=db.seqs[i][0:150]) for i in range(5)
        ]
        input_path = tmp_path / "batch.fa"
        write_fasta(queries, input_path)
        serial_out = tmp_path / "serial.tsv"
        threaded_out = tmp_path / "threaded.tsv"
        BlastExecutable(db, num_threads=1).run(input_path, serial_out)
        BlastExecutable(db, num_threads=4).run(input_path, threaded_out)
        assert serial_out.read_text() == threaded_out.read_text()


class TestGtmExecutable:
    def test_interpolates_npz_to_npy(self, tmp_path):
        rng = np.random.default_rng(0)
        train = rng.normal(size=(150, 8))
        model = train_gtm(train, latent_per_dim=5, rbf_per_dim=3, iterations=5)
        points = rng.normal(size=(200, 8))
        input_path = tmp_path / "split.npz"
        np.savez_compressed(input_path, points=points)
        output_path = tmp_path / "latent.npy"
        GtmInterpolationExecutable(model).run(input_path, output_path)
        latent = np.load(output_path)
        assert latent.shape == (200, 2)

    def test_output_much_smaller_than_input(self, tmp_path):
        """The paper: GTM output is orders of magnitude smaller."""
        rng = np.random.default_rng(1)
        train = rng.normal(size=(100, 166))
        model = train_gtm(train, latent_per_dim=4, rbf_per_dim=2, iterations=3)
        points = rng.normal(size=(5000, 166))
        input_path = tmp_path / "split.npz"
        np.savez(input_path, points=points)  # uncompressed: fair comparison
        output_path = tmp_path / "latent.npy"
        GtmInterpolationExecutable(model).run(input_path, output_path)
        assert output_path.stat().st_size < input_path.stat().st_size / 20

    def test_idempotent(self, tmp_path):
        rng = np.random.default_rng(2)
        train = rng.normal(size=(80, 6))
        model = train_gtm(train, latent_per_dim=4, rbf_per_dim=2, iterations=3)
        input_path = tmp_path / "in.npz"
        np.savez_compressed(input_path, points=rng.normal(size=(50, 6)))
        out1, out2 = tmp_path / "a.npy", tmp_path / "b.npy"
        exe = GtmInterpolationExecutable(model)
        exe.run(input_path, out1)
        exe.run(input_path, out2)
        assert out1.read_bytes() == out2.read_bytes()
