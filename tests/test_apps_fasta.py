"""Tests for FASTA parsing and writing."""

import io

import pytest

from repro.apps.fasta import FastaRecord, parse_fasta, read_fasta, write_fasta


def test_roundtrip_single_record(tmp_path):
    record = FastaRecord(id="read1", seq="ACGTACGT", description="test read")
    path = tmp_path / "one.fa"
    write_fasta([record], path)
    (back,) = read_fasta(path)
    assert back == record


def test_roundtrip_many_records(tmp_path):
    records = [
        FastaRecord(id=f"r{i}", seq="ACGT" * (i + 1)) for i in range(10)
    ]
    path = tmp_path / "many.fa"
    write_fasta(records, path)
    assert read_fasta(path) == records


def test_long_sequences_are_wrapped():
    record = FastaRecord(id="long", seq="A" * 200)
    text = write_fasta([record])
    lines = text.strip().split("\n")
    assert lines[0] == ">long"
    assert all(len(line) <= 70 for line in lines[1:])
    assert "".join(lines[1:]) == "A" * 200


def test_parse_handles_multiline_and_blank_lines():
    text = ">id1 desc here\nACGT\n\nACGT\n>id2\nTTTT\n"
    records = list(parse_fasta(io.StringIO(text)))
    assert records[0].id == "id1"
    assert records[0].description == "desc here"
    assert records[0].seq == "ACGTACGT"
    assert records[1].id == "id2"
    assert records[1].seq == "TTTT"


def test_parse_rejects_sequence_before_header():
    with pytest.raises(ValueError, match="before any header"):
        list(parse_fasta(io.StringIO("ACGT\n>late\nACGT\n")))


def test_parse_rejects_empty_header():
    with pytest.raises(ValueError, match="empty FASTA header"):
        list(parse_fasta(io.StringIO(">\nACGT\n")))


def test_parse_empty_stream_yields_nothing():
    assert list(parse_fasta(io.StringIO(""))) == []


def test_record_validation():
    with pytest.raises(ValueError):
        FastaRecord(id="", seq="ACGT")
    with pytest.raises(ValueError):
        FastaRecord(id="x", seq="AC GT")


def test_record_header_and_len():
    r = FastaRecord(id="x", seq="ACGT", description="something")
    assert r.header == "x something"
    assert len(r) == 4
    bare = FastaRecord(id="y", seq="AC")
    assert bare.header == "y"


def test_empty_sequence_record_roundtrip(tmp_path):
    record = FastaRecord(id="empty", seq="")
    path = tmp_path / "empty.fa"
    write_fasta([record], path)
    (back,) = read_fasta(path)
    assert back.id == "empty"
    assert back.seq == ""
