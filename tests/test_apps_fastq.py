"""Tests for FASTQ parsing and quality-aware trimming."""

import io

import numpy as np
import pytest

from repro.apps.cap3 import assemble
from repro.apps.fastq import (
    FastqRecord,
    parse_fastq,
    quality_trim,
    read_fastq,
    write_fastq,
)


def make_record(seq="ACGT" * 20, quality=30, id="r1"):
    return FastqRecord(id=id, seq=seq, qualities=tuple([quality] * len(seq)))


class TestFastqRecord:
    def test_basic_properties(self):
        record = make_record()
        assert len(record) == 80
        assert record.mean_quality() == 30.0
        assert record.quality_string == chr(30 + 33) * 80

    def test_to_fasta_drops_qualities(self):
        fasta = make_record().to_fasta()
        assert fasta.seq == "ACGT" * 20
        assert fasta.id == "r1"

    def test_validation(self):
        with pytest.raises(ValueError):
            FastqRecord(id="", seq="A", qualities=(30,))
        with pytest.raises(ValueError):
            FastqRecord(id="x", seq="AC", qualities=(30,))
        with pytest.raises(ValueError):
            FastqRecord(id="x", seq="A", qualities=(99,))

    def test_empty_read_mean_quality(self):
        assert FastqRecord(id="x", seq="", qualities=()).mean_quality() == 0.0


class TestFastqIO:
    def test_roundtrip(self, tmp_path):
        records = [
            make_record(id="a"),
            FastqRecord(
                id="b", seq="TTTT", qualities=(2, 20, 40, 93),
                description="sample read",
            ),
        ]
        path = tmp_path / "reads.fq"
        write_fastq(records, path)
        assert read_fastq(path) == records

    def test_parse_rejects_bad_header(self):
        with pytest.raises(ValueError, match="'@' header"):
            list(parse_fastq(io.StringIO(">notfastq\nACGT\n+\nIIII\n")))

    def test_parse_rejects_bad_separator(self):
        with pytest.raises(ValueError, match="separator"):
            list(parse_fastq(io.StringIO("@r\nACGT\nACGT\nIIII\n")))

    def test_parse_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="quality length"):
            list(parse_fastq(io.StringIO("@r\nACGT\n+\nII\n")))

    def test_parse_empty_stream(self):
        assert list(parse_fastq(io.StringIO(""))) == []

    def test_parse_skips_blank_lines_between_records(self):
        text = "@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n"
        records = list(parse_fastq(io.StringIO(text)))
        assert [r.id for r in records] == ["a", "b"]


class TestQualityTrim:
    def test_high_quality_read_untouched(self):
        record = make_record(quality=35)
        trimmed = quality_trim(record, threshold=20)
        assert trimmed.seq == record.seq

    def test_low_quality_ends_removed(self):
        core = "ACGT" * 15
        seq = "TTTTT" + core + "GGGGG"
        quals = (5,) * 5 + (38,) * len(core) + (4,) * 5
        record = FastqRecord(id="x", seq=seq, qualities=quals)
        trimmed = quality_trim(record, threshold=20, window=5)
        assert trimmed.seq == core

    def test_entirely_bad_read_dropped(self):
        record = make_record(quality=5)
        assert quality_trim(record, threshold=20) is None

    def test_short_survivor_dropped(self):
        seq = "A" * 50
        quals = (5,) * 20 + (35,) * 10 + (5,) * 20
        record = FastqRecord(id="x", seq=seq, qualities=quals)
        assert quality_trim(record, threshold=20, min_length=40) is None

    def test_validation(self):
        record = make_record()
        with pytest.raises(ValueError):
            quality_trim(record, window=0)
        with pytest.raises(ValueError):
            quality_trim(record, threshold=200)

    def test_trimmed_reads_feed_the_assembler(self):
        """End-to-end: FASTQ -> quality trim -> assembly."""
        rng = np.random.default_rng(3)
        genome = "".join("ACGT"[i] for i in rng.integers(0, 4, size=400))
        fastq_records = []
        for n, start in enumerate(range(0, 301, 50)):
            fragment = genome[start : start + 100]
            # Good core with a bad 3' tail the trimmer must remove.
            seq = fragment + "AAAAAAAA"
            quals = (38,) * 100 + (3,) * 8
            fastq_records.append(
                FastqRecord(id=f"read{n}", seq=seq, qualities=quals)
            )
        trimmed = [
            quality_trim(r, threshold=20) for r in fastq_records
        ]
        assert all(t is not None for t in trimmed)
        result = assemble(trimmed)
        assert len(result.contigs) == 1
        assert result.contigs[0].seq == genome
