"""Tests for GTM training and GTM Interpolation."""

import numpy as np
import pytest

from repro.apps.gtm import (
    GtmModel,
    gtm_interpolate,
    gtm_responsibilities,
    train_gtm,
)


def three_clusters(n_per=60, dim=10, seed=0):
    """Three well-separated Gaussian blobs in ``dim`` dimensions."""
    rng = np.random.default_rng(seed)
    centers = np.zeros((3, dim))
    centers[0, 0] = 8.0
    centers[1, 1] = 8.0
    centers[2, 2] = 8.0
    points = np.concatenate(
        [c + rng.normal(scale=0.5, size=(n_per, dim)) for c in centers]
    )
    labels = np.repeat(np.arange(3), n_per)
    return points, labels


@pytest.fixture(scope="module")
def trained():
    points, labels = three_clusters()
    model = train_gtm(points, latent_per_dim=8, rbf_per_dim=3, iterations=20)
    return model, points, labels


class TestTraining:
    def test_log_likelihood_increases(self, trained):
        model, _, _ = trained
        ll = model.log_likelihoods
        assert len(ll) >= 2
        # EM must be (near-)monotone: allow tiny numerical wiggle.
        diffs = np.diff(ll)
        assert (diffs > -1e-6 * np.abs(ll[0])).all()
        assert ll[-1] > ll[0]

    def test_model_shapes(self, trained):
        model, points, _ = trained
        assert model.latent_points.shape == (64, 2)
        assert model.rbf_centers.shape == (9, 2)
        assert model.weights.shape == (10, points.shape[1])
        assert model.beta > 0

    def test_projections_shape(self, trained):
        model, points, _ = trained
        proj = model.projections()
        assert proj.shape == (model.n_latent, points.shape[1])

    def test_separated_clusters_map_to_separated_latent_regions(self, trained):
        model, points, labels = trained
        latent = gtm_interpolate(model, points)
        centroids = np.array(
            [latent[labels == k].mean(axis=0) for k in range(3)]
        )
        spreads = np.array(
            [latent[labels == k].std(axis=0).mean() for k in range(3)]
        )
        # Every pair of cluster centroids separated well beyond the spread.
        for i in range(3):
            for j in range(i + 1, 3):
                gap = np.linalg.norm(centroids[i] - centroids[j])
                assert gap > 2.0 * max(spreads[i], spreads[j])

    def test_deterministic(self):
        points, _ = three_clusters(n_per=30, seed=3)
        a = train_gtm(points, latent_per_dim=5, rbf_per_dim=3, iterations=5)
        b = train_gtm(points, latent_per_dim=5, rbf_per_dim=3, iterations=5)
        np.testing.assert_allclose(a.weights, b.weights)
        assert a.beta == b.beta

    def test_input_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            train_gtm(np.zeros(10))
        with pytest.raises(ValueError, match="latent_dim"):
            train_gtm(np.zeros((10, 3)), latent_dim=5)
        with pytest.raises(ValueError, match="two data points"):
            train_gtm(np.zeros((1, 3)))


class TestInterpolation:
    def test_output_shape_and_range(self, trained):
        model, points, _ = trained
        latent = gtm_interpolate(model, points)
        assert latent.shape == (points.shape[0], 2)
        # Posterior means live inside the convex hull of the grid.
        assert latent.min() >= -1.0 - 1e-9
        assert latent.max() <= 1.0 + 1e-9

    def test_batched_matches_unbatched(self, trained):
        model, points, _ = trained
        whole = gtm_interpolate(model, points, batch_size=10**9)
        batched = gtm_interpolate(model, points, batch_size=7)
        np.testing.assert_allclose(whole, batched)

    def test_out_of_sample_near_in_sample_neighbors(self, trained):
        """Interpolated out-of-sample points land near the latent
        positions of the training points from the same cluster."""
        model, points, labels = trained
        rng = np.random.default_rng(42)
        train_latent = gtm_interpolate(model, points)
        for k in range(3):
            cluster = points[labels == k]
            fresh = cluster.mean(axis=0) + rng.normal(
                scale=0.3, size=cluster.shape[1]
            )
            projected = gtm_interpolate(model, fresh[None, :])[0]
            centroid = train_latent[labels == k].mean(axis=0)
            assert np.linalg.norm(projected - centroid) < 0.5

    def test_dimension_mismatch_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(ValueError, match="dimension"):
            gtm_interpolate(model, np.zeros((5, 3)))

    def test_1d_points_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(ValueError, match="2-D"):
            gtm_interpolate(model, np.zeros(10))

    def test_bad_batch_size_rejected(self, trained):
        model, points, _ = trained
        with pytest.raises(ValueError, match="batch_size"):
            gtm_interpolate(model, points, batch_size=0)

    def test_mode_projection_lands_on_grid_points(self, trained):
        model, points, _ = trained
        latent = gtm_interpolate(model, points[:40], projection="mode")
        grid = {tuple(row) for row in model.latent_points}
        assert all(tuple(row) in grid for row in latent)

    def test_mode_near_mean(self, trained):
        """With a well-trained model the mode tracks the mean closely."""
        model, points, _ = trained
        mean = gtm_interpolate(model, points[:60], projection="mean")
        mode = gtm_interpolate(model, points[:60], projection="mode")
        spacing = 2.0 / 7  # 8 points per dim over [-1, 1]
        distance = np.linalg.norm(mean - mode, axis=1)
        assert np.median(distance) < 2 * spacing

    def test_unknown_projection_rejected(self, trained):
        model, points, _ = trained
        with pytest.raises(ValueError, match="projection"):
            gtm_interpolate(model, points[:5], projection="median")

    def test_responsibilities_are_normalized(self, trained):
        model, points, _ = trained
        resp = gtm_responsibilities(model, points[:25])
        assert resp.shape == (25, model.n_latent)
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)
        assert (resp >= 0).all()

    def test_interpolation_is_responsibility_weighted_mean(self, trained):
        model, points, _ = trained
        resp = gtm_responsibilities(model, points[:10])
        expected = resp @ model.latent_points
        actual = gtm_interpolate(model, points[:10])
        np.testing.assert_allclose(actual, expected)


class TestModelHelpers:
    def test_properties(self, trained):
        model, points, _ = trained
        assert model.n_latent == 64
        assert model.latent_dim == 2
        assert model.data_dim == points.shape[1]

    def test_basis_includes_bias(self, trained):
        model, _, _ = trained
        phi = model.basis(model.latent_points[:5])
        assert phi.shape == (5, model.rbf_centers.shape[0] + 1)
        np.testing.assert_allclose(phi[:, -1], 1.0)
