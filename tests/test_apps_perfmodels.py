"""Tests for the calibrated analytic performance models."""

import pytest

from repro.apps.perfmodels import (
    APP_PERF_MODELS,
    TaskPerfModel,
    task_runtime_seconds,
)
from repro.cloud.instance_types import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES


@pytest.fixture
def machines():
    return {name: t.machine for name, t in EC2_INSTANCE_TYPES.items()}


class TestCap3Model:
    """Cap3 is compute-bound: runtime tracks clock rate."""

    def test_faster_clock_runs_faster(self, machines):
        model = APP_PERF_MODELS["cap3"]
        times = {
            name: task_runtime_seconds(model, 200, machines[name])
            for name in ("L", "XL", "HCXL", "HM4XL")
        }
        assert times["HM4XL"] < times["HCXL"] < times["L"]
        assert times["L"] == pytest.approx(times["XL"], rel=0.05)

    def test_windows_speedup_12_5_percent(self, machines):
        model = APP_PERF_MODELS["cap3"]
        linux = machines["HCXL"]
        windows = EC2_INSTANCE_TYPES["HCXL"].with_os("windows").machine
        t_linux = task_runtime_seconds(model, 200, linux)
        t_windows = task_runtime_seconds(model, 200, windows)
        assert t_linux / t_windows == pytest.approx(1.125, rel=0.02)

    def test_memory_not_a_bottleneck(self, machines):
        """Contention from 8 concurrent workers barely moves Cap3."""
        model = APP_PERF_MODELS["cap3"]
        alone = task_runtime_seconds(model, 200, machines["HCXL"], 1)
        crowded = task_runtime_seconds(model, 200, machines["HCXL"], 8)
        assert crowded / alone < 1.10


class TestBlastModel:
    """BLAST wants the whole database resident in memory."""

    def test_memory_pressure_penalizes_small_instances(self):
        model = APP_PERF_MODELS["blast"]
        small = AZURE_INSTANCE_TYPES["Small"].machine
        xl = AZURE_INSTANCE_TYPES["ExtraLarge"].machine
        t_small = task_runtime_seconds(model, 100, small, concurrent_workers=1)
        # XL runs 8 workers; compare per-core time like Figure 9 does.
        t_xl = task_runtime_seconds(model, 100, xl, concurrent_workers=8)
        assert t_small > t_xl  # 1.7 GB cannot hold the 8.7 GB database

    def test_azure_ordering_matches_figure9(self):
        """Time per task decreases with Azure instance size (Fig. 9)."""
        model = APP_PERF_MODELS["blast"]
        times = []
        for name, workers in (
            ("Small", 1),
            ("Medium", 2),
            ("Large", 4),
            ("ExtraLarge", 8),
        ):
            machine = AZURE_INSTANCE_TYPES[name].machine
            times.append(
                task_runtime_seconds(model, 100, machine, concurrent_workers=workers)
            )
        assert times == sorted(times, reverse=True)

    def test_threads_help_but_less_than_processes(self):
        """Figure 9: N threads in one worker is slightly slower than N
        single-thread workers on independent tasks."""
        model = APP_PERF_MODELS["blast"]
        machine = AZURE_INSTANCE_TYPES["Large"].machine
        # One worker, 4 threads on one task:
        threaded = task_runtime_seconds(
            model, 100, machine, concurrent_workers=1, threads=4
        )
        serial = task_runtime_seconds(model, 100, machine, concurrent_workers=1)
        speedup = serial / threaded
        assert 2.0 < speedup < 4.0  # helps, but sublinear

    def test_hcxl_efficiency_drop_from_crowding(self, machines):
        """Fig. 10's note: 7 GB shared by 8 workers depresses efficiency."""
        model = APP_PERF_MODELS["blast"]
        alone = task_runtime_seconds(model, 100, machines["HCXL"], 1)
        crowded = task_runtime_seconds(model, 100, machines["HCXL"], 8)
        assert 1.1 < crowded / alone < 1.6


class TestGtmModel:
    """GTM Interpolation is memory-bandwidth bound."""

    def test_contention_hurts_more_cores_sharing(self, machines):
        model = APP_PERF_MODELS["gtm"]
        # Per-task time with every core busy:
        t_l = task_runtime_seconds(model, 100, machines["L"], 2)
        t_hcxl = task_runtime_seconds(model, 100, machines["HCXL"], 8)
        # L has 2 cores on 6.4 GB/s; HCXL packs 8 cores on 8 GB/s:
        # HCXL's bandwidth share per worker is much smaller.
        assert t_hcxl > t_l

    def test_hm4xl_fastest_overall(self, machines):
        model = APP_PERF_MODELS["gtm"]
        times = {
            name: task_runtime_seconds(
                model, 100, machines[name], machines[name].cores
            )
            for name in ("L", "XL", "HCXL", "HM4XL")
        }
        assert min(times, key=times.get) == "HM4XL"

    def test_implied_parallel_efficiency_ranking(self, machines):
        """Efficiency = T(1 worker)/T(all workers); Large beats HCXL,
        matching the paper's Section 6.2 EC2 ranking."""
        model = APP_PERF_MODELS["gtm"]

        def efficiency(name):
            m = machines[name]
            return task_runtime_seconds(model, 100, m, 1) / task_runtime_seconds(
                model, 100, m, m.cores
            )

        assert efficiency("L") > efficiency("HCXL")
        azure_small = AZURE_INSTANCE_TYPES["Small"].machine
        az_eff = task_runtime_seconds(
            model, 100, azure_small, 1
        ) / task_runtime_seconds(model, 100, azure_small, 1)
        assert az_eff == pytest.approx(1.0)  # single core: no contention


class TestModelMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskPerfModel(
                app_name="x", unit="u", cpu_ghz_seconds_per_unit=-1,
                mem_bytes_per_unit=0,
            )
        with pytest.raises(ValueError):
            TaskPerfModel(
                app_name="x", unit="u", cpu_ghz_seconds_per_unit=1,
                mem_bytes_per_unit=0, thread_efficiency=0.0,
            )

    def test_runtime_argument_validation(self, machines):
        model = APP_PERF_MODELS["cap3"]
        with pytest.raises(ValueError):
            task_runtime_seconds(model, -1, machines["L"])
        with pytest.raises(ValueError):
            task_runtime_seconds(model, 1, machines["L"], concurrent_workers=0)
        with pytest.raises(ValueError):
            model.thread_speedup(0)

    def test_thread_speedup_without_support_is_one(self):
        model = APP_PERF_MODELS["cap3"]  # does not support threads
        assert model.thread_speedup(8) == 1.0

    def test_clock_override_scales_cpu_term(self, machines):
        model = APP_PERF_MODELS["cap3"]
        base = task_runtime_seconds(model, 200, machines["HCXL"])
        slowed = task_runtime_seconds(
            model, 200, machines["HCXL"], clock_ghz=1.25
        )
        assert slowed > 1.8 * base  # CPU-bound: ~2x slower at half clock

    def test_zero_work_is_zero_time(self, machines):
        model = APP_PERF_MODELS["gtm"]
        assert task_runtime_seconds(model, 0, machines["L"]) == 0.0

    def test_paging_penalty_is_one_when_fitting(self, machines):
        model = APP_PERF_MODELS["blast"]
        assert model.paging_penalty(machines["HM4XL"], 8) == 1.0
        assert model.paging_penalty(machines["HCXL"], 8) > 1.0
