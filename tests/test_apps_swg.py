"""Tests for the SWG pairwise-distance application."""

import numpy as np
import pytest

from repro.apps.swg import (
    SWG_PERF_MODEL,
    SwgParams,
    pairwise_distance,
    swg_align,
    swg_block_task_specs,
    swg_distance_block,
)


def random_dna(length, seed):
    rng = np.random.default_rng(seed)
    return "".join("ACGT"[i] for i in rng.integers(0, 4, size=length))


class TestAlignment:
    def test_identical_sequences_align_perfectly(self):
        seq = random_dna(100, 1)
        score, matches, length = swg_align(seq, seq)
        assert matches == length == 100
        assert score == pytest.approx(100 * 5.0)

    def test_empty_sequences(self):
        assert swg_align("", "ACGT") == (0.0, 0, 0)
        assert swg_align("ACGT", "") == (0.0, 0, 0)

    def test_local_alignment_finds_embedded_motif(self):
        motif = random_dna(40, 2)
        a = random_dna(30, 3) + motif + random_dna(30, 4)
        b = random_dna(25, 5) + motif + random_dna(25, 6)
        score, matches, length = swg_align(a, b)
        assert matches >= 40
        assert score >= 40 * 5.0

    def test_substitution_reduces_identity(self):
        seq = random_dna(100, 7)
        mutated = "T" + seq[1:50] + "A" + seq[51:]
        # Mutate interior positions to keep a single local alignment.
        mutated = seq[:50] + ("A" if seq[50] != "A" else "C") + seq[51:]
        _, matches, length = swg_align(seq, mutated)
        assert length == 100
        assert matches == 99

    def test_affine_gap_prefers_one_long_gap(self):
        """With affine costs, one 3-gap beats three 1-gaps."""
        seq = random_dna(60, 8)
        gapped = seq[:30] + seq[33:]  # one 3-base deletion
        score, matches, length = swg_align(seq, gapped)
        # The alignment bridges the gap: matches = 57 of length 60.
        assert matches == 57
        assert length == 60
        expected = 57 * 5.0 - (10.0 + 3 * 0.5 - 0.5)
        assert score == pytest.approx(expected)

    def test_symmetry(self):
        a, b = random_dna(80, 9), random_dna(80, 10)
        assert swg_align(a, b)[0] == pytest.approx(swg_align(b, a)[0])

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SwgParams(match=0)
        with pytest.raises(ValueError):
            SwgParams(gap_open=-1)


class TestDistance:
    def test_identical_distance_zero(self):
        seq = random_dna(100, 11)
        assert pairwise_distance(seq, seq) == 0.0

    def test_unrelated_distance_high(self):
        a, b = random_dna(100, 12), random_dna(100, 13)
        assert pairwise_distance(a, b) > 0.15

    def test_bounded(self):
        for seed in range(5):
            a = random_dna(60, seed)
            b = random_dna(60, seed + 50)
            assert 0.0 <= pairwise_distance(a, b) <= 1.0

    def test_distance_tracks_divergence(self):
        base = random_dna(150, 14)
        rng = np.random.default_rng(15)

        def mutate(rate):
            out = list(base)
            for i in range(len(out)):
                if rng.random() < rate:
                    out[i] = "ACGT"[rng.integers(0, 4)]
            return "".join(out)

        near = pairwise_distance(base, mutate(0.05))
        far = pairwise_distance(base, mutate(0.30))
        assert near < far


class TestBlocks:
    def test_symmetric_block_properties(self):
        group = [random_dna(60, s) for s in range(6)]
        block = swg_distance_block(group, group, symmetric=True)
        np.testing.assert_allclose(block, block.T)
        np.testing.assert_allclose(np.diag(block), 0.0)

    def test_off_diagonal_block_matches_direct(self):
        a = [random_dna(50, s) for s in range(3)]
        b = [random_dna(50, s + 10) for s in range(4)]
        block = swg_distance_block(a, b)
        assert block.shape == (3, 4)
        assert block[1, 2] == pytest.approx(pairwise_distance(a[1], b[2]))

    def test_task_specs_cover_all_pairs_once(self):
        n, block_size = 100, 32
        specs = swg_block_task_specs(n, block_size)
        total_pairs = sum(s.work_units for s in specs)
        assert total_pairs == n * (n - 1) / 2
        # Upper triangle of a 4x4 block grid: 10 blocks.
        assert len(specs) == 10

    def test_task_specs_validation(self):
        with pytest.raises(ValueError):
            swg_block_task_specs(1)
        with pytest.raises(ValueError):
            swg_block_task_specs(10, block_size=0)


class TestSwgOnFrameworks:
    def test_swg_blocks_run_on_the_simulated_cloud(self):
        """The extensibility point: a user application only needs a
        TaskPerfModel to run on every backend."""
        from repro.cloud.failures import FaultPlan
        from repro.core.application import Application
        from repro.core.backends import make_backend

        app = Application(name="swg", perf_model=SWG_PERF_MODEL)
        tasks = swg_block_task_specs(512, block_size=64)
        backend = make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=4
        )
        result = backend.run(app, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        t1 = backend.estimate_sequential_time(app, tasks)
        efficiency = t1 / (backend.total_cores * result.makespan_seconds)
        assert efficiency > 0.7  # CPU-bound blocks parallelize well
