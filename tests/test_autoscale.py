"""Elastic autoscaling: policies, the controller, and the study.

The heavyweight claims:

* scaling really adds/removes instances mid-run (and bills them);
* spot preemption loses no tasks — the completed set equals the
  fault-free run's set;
* the study frontier is deterministic byte-for-byte and shows
  spot-heavy pools cheaper but slower;
* results (including autoscale extras) survive the sweep cache.
"""

import pytest

from repro.autoscale import (
    AutoscalePlan,
    StepScalingPolicy,
    TargetTrackingPolicy,
    autoscale_study,
    default_policy,
    serialize_rows,
)
from repro.classiccloud.framework import (
    ClassicCloudConfig,
    ClassicCloudFramework,
)
from repro.cloud.spot import BidStrategy, SpotMarketModel
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs

#: A lively market so short test runs reliably see price spikes.
SPIKY_MARKET = SpotMarketModel(spike_probability=0.5, interval_s=60.0)


def elastic_config(seed=5, n_instances=2, **plan_kwargs):
    plan_kwargs.setdefault("max_instances", 6)
    plan_kwargs.setdefault("spot_market", SPIKY_MARKET)
    return ClassicCloudConfig(
        provider="aws",
        instance_type="HCXL",
        n_instances=n_instances,
        workers_per_instance=8,
        seed=seed,
        autoscale=AutoscalePlan(**plan_kwargs),
    )


def run_cap3(config, n_files=96):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files, reads_per_file=400)
    result = ClassicCloudFramework(config).run(app, tasks)
    return result, {t.task_id for t in tasks}


class TestPolicies:
    def test_target_tracking_math(self):
        policy = TargetTrackingPolicy(target_backlog_per_worker=2.0)
        kwargs = dict(current_instances=1, workers_per_instance=8)
        assert policy.desired_instances(backlog=0, **kwargs) == 0
        assert policy.desired_instances(backlog=10, **kwargs) == 1
        assert policy.desired_instances(backlog=64, **kwargs) == 4
        assert policy.desired_instances(backlog=65, **kwargs) == 5

    def test_step_policy_adjustments(self):
        policy = StepScalingPolicy()
        kwargs = dict(current_instances=2, workers_per_instance=8)
        # 16 workers; backlog 120 -> metric 7.5 -> +4.
        assert policy.desired_instances(backlog=120, **kwargs) == 6
        # backlog 56 -> metric 3.5 -> +2.
        assert policy.desired_instances(backlog=56, **kwargs) == 4
        # backlog 28 -> metric 1.75 -> +1.
        assert policy.desired_instances(backlog=28, **kwargs) == 3
        # backlog 12 -> metric 0.75 -> hold.
        assert policy.desired_instances(backlog=12, **kwargs) == 2
        # backlog 2 -> metric 0.125 -> -1.
        assert policy.desired_instances(backlog=2, **kwargs) == 1

    def test_default_policy_names(self):
        assert isinstance(
            default_policy("target-tracking"), TargetTrackingPolicy
        )
        assert isinstance(default_policy("step"), StepScalingPolicy)
        with pytest.raises(KeyError):
            default_policy("predictive")

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            AutoscalePlan(min_instances=0)
        with pytest.raises(ValueError):
            AutoscalePlan(min_instances=4, max_instances=2)
        with pytest.raises(ValueError):
            AutoscalePlan(billing="weekly")
        assert AutoscalePlan(max_instances=4).clamp(10) == 4
        assert AutoscalePlan(min_instances=2).clamp(0) == 2


class TestElasticPool:
    def test_scales_up_and_down(self):
        result, task_ids = run_cap3(
            elastic_config(n_instances=1, bid=BidStrategy.on_demand())
        )
        extras = result.extras
        assert result.completed == task_ids
        assert extras["autoscale_instances_added"] >= 1
        assert extras["autoscale_peak_instances"] > 1
        # The pool grew beyond the initial instance and was billed for
        # every lifetime it started.
        assert extras["autoscale_on_demand_seconds"] > 0
        assert extras["autoscale_preemptions"] == 0

    def test_per_second_billing_flows_to_meter(self):
        config = elastic_config(
            n_instances=1, bid=BidStrategy.on_demand(), billing="per-second"
        )
        app = get_application("cap3")
        tasks = cap3_task_specs(48, reads_per_file=400)
        framework = ClassicCloudFramework(config)
        result = framework.run(app, tasks)
        # Per-second elastic pools bill (nearly) only what they use:
        # billed hours stay within the 60 s minimum of exact usage.
        billed = result.billing.compute_hour_units
        used = (
            result.extras["autoscale_on_demand_seconds"]
            + result.extras["autoscale_spot_seconds"]
        ) / 3600.0
        assert billed == pytest.approx(used, abs=0.1)

    def test_preemption_loses_no_tasks(self):
        spot, task_ids = run_cap3(elastic_config(bid=BidStrategy.spot()))
        assert spot.extras["autoscale_preemptions"] >= 1
        # Fault-free reference: the same workload, static on-demand.
        reference, _ = run_cap3(
            ClassicCloudConfig(
                provider="aws", instance_type="HCXL", n_instances=2,
                workers_per_instance=8, seed=5,
            )
        )
        assert reference.completed == task_ids
        assert spot.completed == reference.completed

    def test_spot_cheaper_but_slower(self):
        spot, _ = run_cap3(elastic_config(bid=BidStrategy.spot()))
        on_demand, _ = run_cap3(elastic_config(bid=BidStrategy.on_demand()))
        assert spot.billing.total_cost < on_demand.billing.total_cost
        assert spot.makespan_seconds > on_demand.makespan_seconds
        assert spot.extras["autoscale_preemptions"] >= 1

    def test_preempted_lifetimes_metered_as_preempted(self):
        import numpy as np

        from repro.cloud.billing import CostMeter
        from repro.cloud.compute import CloudProvider
        from repro.cloud.instance_types import get_instance_type
        from repro.cloud.pricing import AWS_PRICES
        from repro.sim.engine import Environment

        env = Environment()
        meter = CostMeter(AWS_PRICES)
        provider = CloudProvider(
            env, "aws", np.random.default_rng(0), meter=meter
        )
        itype = get_instance_type("aws", "HCXL")

        def scenario(env):
            batch = yield env.process(
                provider.provision(
                    itype, 1, market="spot", price_per_hour=0.2,
                )
            )
            yield env.timeout(1800.0)
            provider.terminate(batch[0], preempted=True)

        env.run(until=env.process(scenario(env)))
        (usage,) = meter.instance_usage
        assert usage.preempted
        assert usage.rate_per_hour == 0.2  # spot price frozen at launch
        # Preemption within the first hour is free.
        assert usage.billed_hours() == 0.0


class TestStudy:
    STUDY_KWARGS = dict(
        apps=("cap3",),
        policies=("target-tracking",),
        spot_fractions=(0.0, 1.0),
        n_files=96,
        seed=5,
        market=SPIKY_MARKET,
    )

    def test_deterministic_bytes_across_job_counts(self):
        rows_serial = autoscale_study(jobs=1, cache=None, **self.STUDY_KWARGS)
        rows_parallel = autoscale_study(
            jobs=2, cache=None, **self.STUDY_KWARGS
        )
        assert serialize_rows(rows_serial) == serialize_rows(rows_parallel)
        # The frontier includes real preemption timing, so byte equality
        # covers the preemption path too.
        assert sum(r.preemptions for r in rows_serial) >= 1

    def test_frontier_direction(self):
        rows = autoscale_study(jobs=1, cache=None, **self.STUDY_KWARGS)
        by_fraction = {r.spot_fraction: r for r in rows}
        assert by_fraction[1.0].total_cost < by_fraction[0.0].total_cost
        assert by_fraction[1.0].makespan_s > by_fraction[0.0].makespan_s
        assert by_fraction[1.0].preemptions >= 1
        assert by_fraction[0.0].preemptions == 0

    def test_extras_survive_the_result_cache(self, tmp_path, monkeypatch):
        from repro.sweep.cache import ResultCache

        # The runner bypasses the cache while the sanitizer is active.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        cache = ResultCache(tmp_path)
        cold = autoscale_study(jobs=1, cache=cache, **self.STUDY_KWARGS)
        warm = autoscale_study(jobs=1, cache=cache, **self.STUDY_KWARGS)
        assert serialize_rows(cold) == serialize_rows(warm)
        assert cache.stats().hits == len(cold)


def test_cli_autoscale_run(capsys):
    from repro.cli import main

    code = main(
        [
            "run", "--app", "cap3", "--files", "16", "--instances", "1",
            "--autoscale", "target-tracking", "--spot-fraction", "0.5",
            "--no-cache",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "spot preemptions" in out
    assert "peak instances" in out


def test_cli_autoscale_rejects_cluster_backends(capsys):
    from repro.cli import main

    code = main(
        ["run", "--backend", "hadoop", "--autoscale", "step", "--files", "4"]
    )
    assert code == 2
    assert "requires a cloud backend" in capsys.readouterr().out
