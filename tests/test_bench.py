"""The bench v3 report surface and the kernel-regression gate."""

import io
import json

import pytest

from repro.cli import main
from repro.sweep import bench as bench_mod
from repro.sweep.bench import check_kernel_regression


def _report(rates):
    return {
        "schema": "repro-bench-v3",
        "kernel": {
            name: {"events_per_s": rate} for name, rate in rates.items()
        },
    }


class TestKernelGate:
    def test_passes_at_and_above_floor(self):
        baseline = _report({"timeout_chain": 1_000_000.0})
        assert check_kernel_regression(
            _report({"timeout_chain": 900_000.0}), baseline
        ) == []
        assert check_kernel_regression(
            _report({"timeout_chain": 1_200_000.0}), baseline
        ) == []

    def test_fails_below_floor(self):
        baseline = _report({"timeout_chain": 1_000_000.0})
        failures = check_kernel_regression(
            _report({"timeout_chain": 800_000.0}), baseline
        )
        assert len(failures) == 1
        assert "timeout_chain" in failures[0]

    def test_tolerance_is_configurable(self):
        baseline = _report({"ping_pong": 1_000_000.0})
        report = _report({"ping_pong": 700_000.0})
        assert check_kernel_regression(report, baseline, tolerance=0.5) == []
        assert check_kernel_regression(report, baseline, tolerance=0.1)

    def test_shapes_missing_on_either_side_are_skipped(self):
        baseline = _report({"timeout_chain": 1e6, "new_shape": 1e6})
        report = _report({"timeout_chain": 1e6, "other_shape": 1.0})
        assert check_kernel_regression(report, baseline) == []

    def test_multiple_regressions_all_reported(self):
        baseline = _report({"a": 1e6, "b": 1e6})
        failures = check_kernel_regression(
            _report({"a": 1.0, "b": 1.0}), baseline
        )
        assert len(failures) == 2


class TestBenchCli:
    @pytest.fixture
    def canned_report(self, monkeypatch):
        report = {
            "schema": "repro-bench-v3",
            "smoke": True,
            "jobs": 2,
            "jobs_effective": 1,
            "cpu_count": 1,
            "kernel": {"timeout_chain": {"events_per_s": 1_000_000.0}},
            "phases": {"pool_spawn_s": 0.05},
            "sweeps": {},
            "pool": {"workers": 2, "spawns": 1, "submissions": 1,
                     "reuses": 0},
            "workloads": {},
        }
        monkeypatch.setattr(
            bench_mod, "run_bench", lambda smoke, jobs: report
        )
        return report

    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_gate_pass(self, canned_report, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_report({"timeout_chain": 1_000_000.0}))
        )
        code, output = self._run(
            "bench", "--smoke", "--output", str(tmp_path / "o.json"),
            "--gate", str(baseline),
        )
        assert code == 0, output
        assert "kernel gate" in output

    def test_gate_regression_fails(self, canned_report, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_report({"timeout_chain": 2_000_000.0}))
        )
        code, output = self._run(
            "bench", "--smoke", "--output", str(tmp_path / "o.json"),
            "--gate", str(baseline),
        )
        assert code == 1
        assert "REGRESSION" in output

    def test_missing_gate_baseline_is_exit_2(self, canned_report, tmp_path):
        code, output = self._run(
            "bench", "--smoke", "--output", str(tmp_path / "o.json"),
            "--gate", str(tmp_path / "nope.json"),
        )
        assert code == 2
        assert "error" in output

    def test_single_core_honesty_notice(self, canned_report, tmp_path):
        code, output = self._run(
            "bench", "--smoke", "--output", str(tmp_path / "o.json")
        )
        assert code == 0
        assert "jobs_effective=1" in output
        written = json.loads((tmp_path / "o.json").read_text())
        assert written["jobs_effective"] == 1


class TestCommittedBench:
    def test_bench3_meets_acceptance_vs_bench2(self):
        """The committed BENCH_3.json demonstrates the PR's wins."""
        from pathlib import Path

        root = Path(__file__).parent.parent
        b2 = json.loads((root / "BENCH_2.json").read_text())
        b3 = json.loads((root / "BENCH_3.json").read_text())
        assert b3["schema"] == "repro-bench-v3"
        assert b3["pool"]["spawns"] == 1
        assert b3["pool"]["reuses"] >= 1
        for app in ("cap3", "blast", "gtm"):
            old = b2["sweeps"][app]
            new = b3["sweeps"][app]
            old_ratio = old["parallel_s"] / old["serial_s"]
            new_ratio = new["parallel_s"] / new["serial_s"]
            assert new_ratio < old_ratio, app
            assert new["chunk_sizes"]
            assert b3["workloads"][app]["store_hits"] == 1
        blast_speedup = (
            b2["sweeps"]["blast"]["serial_s"]
            / b3["sweeps"]["blast"]["serial_s"]
        )
        assert blast_speedup >= 1.5
