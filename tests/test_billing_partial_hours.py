"""Partial instance-hour accounting under elastic pools.

Every expectation here is hand-computed from the billing rules:

* ``hourly`` — a started hour is a billed hour (ceil), and a
  zero-uptime instance still pays its first hour;
* ``hourly`` + preempted — the provider-interrupted partial hour is
  forgiven (floor), so a preemption inside the first hour is free;
* ``per-second`` — exact seconds, with a 60-second minimum charge,
  preempted or not.
"""

import pytest

from repro.cloud.billing import (
    PER_SECOND_MINIMUM_S,
    CostMeter,
    InstanceUsage,
)
from repro.cloud.pricing import AWS_PRICES

RATE = 0.68  # HCXL $/hour


def hours(usage_seconds, **kwargs):
    return InstanceUsage(
        type_name="HCXL", seconds=usage_seconds, rate_per_hour=RATE, **kwargs
    ).billed_hours()


class TestHourly:
    def test_partial_hour_rounds_up(self):
        assert hours(5400.0) == 2.0  # 1.5h -> 2h

    def test_scale_down_after_half_hour_pays_full_hour(self):
        assert hours(1800.0) == 1.0

    def test_exact_hours_not_rounded(self):
        assert hours(7200.0) == 2.0

    def test_zero_uptime_pays_first_hour(self):
        assert hours(0.0) == 1.0


class TestPreemptedHourly:
    def test_interrupted_partial_hour_forgiven(self):
        assert hours(4500.0, preempted=True) == 1.0  # 1.25h -> 1h

    def test_preemption_within_first_hour_is_free(self):
        assert hours(1800.0, preempted=True) == 0.0

    def test_whole_hours_still_billed(self):
        assert hours(7200.0, preempted=True) == 2.0


class TestPerSecond:
    def test_exact_seconds(self):
        assert hours(1800.0, billing="per-second") == pytest.approx(0.5)

    def test_minimum_charge(self):
        assert hours(30.0, billing="per-second") == pytest.approx(
            PER_SECOND_MINIMUM_S / 3600.0
        )

    def test_preemption_does_not_forgive_seconds(self):
        assert hours(1800.0, billing="per-second", preempted=True) == (
            pytest.approx(0.5)
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="billing"):
            InstanceUsage(
                type_name="HCXL", seconds=1.0, rate_per_hour=RATE,
                billing="weekly",
            )


def test_meter_totals_hand_computed():
    """A scale-up/scale-down/preemption lifetime mix, summed by hand."""
    meter = CostMeter(AWS_PRICES)
    # Initial instance: ran the whole 1.5h run.
    meter.record_instance_usage("HCXL", 5400.0, RATE)
    # Scaled up late, scaled down after 30 min.
    meter.record_instance_usage("HCXL", 1800.0, RATE)
    # Spot instance preempted at 1.25h: pays one hour only.
    meter.record_instance_usage("HCXL", 4500.0, RATE, preempted=True)
    # Spot instance preempted at 20 min: free.
    meter.record_instance_usage("HCXL", 1200.0, RATE, preempted=True)
    # Per-second elastic instance, 10 min.
    meter.record_instance_usage("HCXL", 600.0, RATE, billing="per-second")

    report = meter.report()
    # Hours: 2 + 1 + 1 + 0 + 600/3600.
    assert report.compute_hour_units == pytest.approx(4.0 + 600.0 / 3600.0)
    assert report.compute_cost == pytest.approx(
        RATE * (2.0 + 1.0 + 1.0 + 0.0 + 600.0 / 3600.0)
    )
    # Amortized cost ignores rounding and forgiveness alike.
    used = 5400.0 + 1800.0 + 4500.0 + 1200.0 + 600.0
    assert report.amortized_compute_cost == pytest.approx(
        RATE * used / 3600.0
    )
    # Forgiveness can push the billed cost below amortized for the
    # preempted instances alone: 1h billed vs 1.583h used.
    preempted_billed = RATE * 1.0
    preempted_used = RATE * (4500.0 + 1200.0) / 3600.0
    assert preempted_billed < preempted_used
