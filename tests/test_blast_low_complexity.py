"""Tests for SEG-style low-complexity query filtering."""

import numpy as np
import pytest

from repro.apps.blast import (
    AMINO_ACIDS,
    BlastDatabase,
    BlastParams,
    LowComplexityFilter,
    blast_search,
    mask_low_complexity,
    _encode,
)
from repro.apps.fasta import FastaRecord


def random_protein(length, seed):
    rng = np.random.default_rng(seed)
    return "".join(AMINO_ACIDS[i] for i in rng.integers(0, 20, size=length))


class TestMask:
    def test_homopolymer_fully_masked(self):
        enc = _encode("A" * 40)
        mask = mask_low_complexity(enc, LowComplexityFilter())
        assert mask.all()

    def test_random_sequence_unmasked(self):
        enc = _encode(random_protein(60, seed=1))
        mask = mask_low_complexity(enc, LowComplexityFilter())
        assert not mask.any()

    def test_mixed_sequence_masks_only_the_run(self):
        complex_part = random_protein(40, seed=2)
        seq = complex_part + "QQQQQQQQQQQQQQQQ" + complex_part
        mask = mask_low_complexity(_encode(seq), LowComplexityFilter())
        # The poly-Q core is masked...
        assert mask[45:50].all()
        # ...but the fully complex flanks away from the boundary are not.
        assert not mask[:25].any()
        assert not mask[-25:].any()

    def test_short_sequence_never_masked(self):
        enc = _encode("AAA")
        mask = mask_low_complexity(enc, LowComplexityFilter(window=12))
        assert not mask.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            LowComplexityFilter(window=2)
        with pytest.raises(ValueError):
            LowComplexityFilter(entropy_threshold_bits=0)


class TestFilteredSearch:
    def test_low_complexity_seeding_suppressed(self):
        """A poly-A query against a database with poly-A runs: filtering
        removes the spurious hits entirely."""
        db = BlastDatabase(
            [
                FastaRecord(
                    id=f"junk{i}",
                    seq=random_protein(80, seed=i) + "A" * 50
                    + random_protein(80, seed=100 + i),
                )
                for i in range(5)
            ]
        )
        query = FastaRecord(id="polyA", seq="A" * 60)
        unfiltered = blast_search([query], db, BlastParams())["polyA"]
        filtered = blast_search(
            [query],
            db,
            BlastParams(low_complexity_filter=LowComplexityFilter()),
        )["polyA"]
        assert len(unfiltered) == 5  # every sequence "matches" the run
        assert filtered == []  # the filter kills the artefact

    def test_real_homology_survives_filtering(self):
        subject = random_protein(250, seed=9)
        db = BlastDatabase([FastaRecord(id="s", seq=subject)])
        query = FastaRecord(id="q", seq=subject[40:200])
        filtered = blast_search(
            [query],
            db,
            BlastParams(low_complexity_filter=LowComplexityFilter()),
        )["q"]
        assert filtered
        assert filtered[0].identity == pytest.approx(1.0)
