"""Cross-check the banded Smith-Waterman against a reference DP.

The banded implementation trades completeness for speed; within its band
it must agree exactly with a textbook full-matrix local alignment under
the same scoring (BLOSUM62, linear gap penalty).
"""

import numpy as np
import pytest

from repro.apps.blast import (
    AMINO_ACIDS,
    BlastParams,
    _banded_sw,
    _encode,
)


def reference_smith_waterman(query, subject, gap_penalty):
    """Full-matrix local alignment score with linear gaps."""
    from repro.apps.blast import _BLOSUM62

    m, n = len(query), len(subject)
    score = np.zeros((m + 1, n + 1))
    best = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = score[i - 1, j - 1] + _BLOSUM62[query[i - 1], subject[j - 1]]
            gap_q = score[i, j - 1] - gap_penalty
            gap_s = score[i - 1, j] - gap_penalty
            score[i, j] = max(0.0, sub, gap_q, gap_s)
            best = max(best, score[i, j])
    return best


def random_protein(length, seed):
    rng = np.random.default_rng(seed)
    return "".join(AMINO_ACIDS[i] for i in rng.integers(0, 20, size=length))


@pytest.mark.parametrize("seed", range(6))
def test_banded_matches_reference_on_diagonal_alignments(seed):
    """Ungapped-homolog pairs: the optimum lies on the main diagonal,
    well inside any band, so banded == full DP."""
    rng = np.random.default_rng(seed)
    base = random_protein(80, seed)
    mutated = list(base)
    for pos in rng.integers(0, 80, size=8):
        mutated[pos] = AMINO_ACIDS[rng.integers(0, 20)]
    query = _encode(base)
    subject = _encode("".join(mutated))
    params = BlastParams(band_width=16)
    banded_score = _banded_sw(query, subject, 0, params)[0]
    full = reference_smith_waterman(query, subject, params.gap_penalty)
    assert banded_score == pytest.approx(full)


@pytest.mark.parametrize("gap_len", [1, 2, 3])
def test_banded_matches_reference_with_small_gaps(gap_len):
    """An indel shifts the alignment off-diagonal by gap_len; with
    band_width >> gap_len the banded DP must still find the optimum."""
    base = random_protein(70, seed=99)
    # Insert a gap into the subject copy.
    subject_seq = base[:30] + random_protein(gap_len, seed=7) + base[30:]
    query = _encode(base)
    subject = _encode(subject_seq)
    params = BlastParams(band_width=16)
    banded_score = _banded_sw(query, subject, 0, params)[0]
    full = reference_smith_waterman(query, subject, params.gap_penalty)
    assert banded_score == pytest.approx(full)


def test_banded_never_exceeds_reference():
    """The band restricts the search space: banded <= full, always."""
    for seed in range(8):
        query = _encode(random_protein(60, seed))
        subject = _encode(random_protein(60, seed + 100))
        params = BlastParams(band_width=8)
        banded_score = _banded_sw(query, subject, 0, params)[0]
        full = reference_smith_waterman(query, subject, params.gap_penalty)
        assert banded_score <= full + 1e-9


def test_identity_fraction_consistent_with_alignment():
    base = random_protein(60, seed=4)
    query = _encode(base)
    params = BlastParams(band_width=16)
    score, q0, q1, s0, s1, matches, length = _banded_sw(
        query, query, 0, params
    )
    # Self-alignment: all matches, full length.
    assert matches == length == 60
    assert (q0, q1, s0, s1) == (0, 60, 0, 60)
