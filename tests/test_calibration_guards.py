"""Calibration guards: the per-task runtimes behind every figure shape.

EXPERIMENTS.md's paper-vs-measured comparisons depend on the perf-model
constants staying in their calibrated ranges.  A careless retune that
silently inverted a paper finding would pass unit tests but break one of
these guards.
"""

import pytest

from repro.apps.perfmodels import APP_PERF_MODELS, task_runtime_seconds
from repro.cloud.instance_types import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES

HCXL = EC2_INSTANCE_TYPES["HCXL"].machine
L = EC2_INSTANCE_TYPES["L"].machine
XL = EC2_INSTANCE_TYPES["XL"].machine
HM4XL = EC2_INSTANCE_TYPES["HM4XL"].machine
AZ_SMALL = AZURE_INSTANCE_TYPES["Small"].machine
AZ_LARGE = AZURE_INSTANCE_TYPES["Large"].machine


class TestCap3Calibration:
    """Figure 6's per-file per-core times: ~100-120 s for 458 reads."""

    def test_458_read_task_on_hcxl_core(self):
        model = APP_PERF_MODELS["cap3"]
        t = task_runtime_seconds(model, 458, HCXL, concurrent_workers=8)
        assert 90 < t < 140

    def test_200_read_instance_study_scale(self):
        """Figure 4: 200 files x 200 reads on 16 cores lands at
        hundreds-of-seconds makespans (12.5 rounds/core)."""
        model = APP_PERF_MODELS["cap3"]
        per_task = task_runtime_seconds(model, 200, HCXL, concurrent_workers=8)
        makespan = per_task * 200 / 16
        assert 400 < makespan < 900

    def test_windows_advantage_preserved(self):
        model = APP_PERF_MODELS["cap3"]
        assert model.os_speedup["windows"] == pytest.approx(1.125)


class TestBlastCalibration:
    """Figure 8: 64 query files on 16 HCXL cores around 2000-3000 s."""

    def test_query_file_on_hcxl(self):
        model = APP_PERF_MODELS["blast"]
        per_task = task_runtime_seconds(model, 100, HCXL, concurrent_workers=8)
        makespan = per_task * 64 / 16
        assert 1500 < makespan < 3500

    def test_database_pressure_ordering(self):
        """The memory-residency crossovers behind Figures 8-10."""
        model = APP_PERF_MODELS["blast"]
        # XL (15 GB) fits the DB; HCXL (7 GB) pays for it.
        assert model.paging_penalty(XL, 4) == 1.0
        assert model.paging_penalty(HCXL, 8) > 1.2
        # Azure Small (1.7 GB) pays dearly (Figure 9).
        assert model.paging_penalty(AZ_SMALL, 1) > 3.0
        assert model.paging_penalty(AZ_LARGE, 4) < 2.0

    def test_hcxl_still_competitive_with_xl(self):
        """Figure 8's 'no dramatic memory effect': HCXL within ~30% of
        XL despite <1 GB/core."""
        model = APP_PERF_MODELS["blast"]
        t_hcxl = task_runtime_seconds(model, 100, HCXL, concurrent_workers=8)
        t_xl = task_runtime_seconds(model, 100, XL, concurrent_workers=4)
        assert t_hcxl / t_xl < 1.35


class TestGtmCalibration:
    """Figures 13-15: memory bandwidth decides GTM."""

    def test_100k_point_task_times(self):
        model = APP_PERF_MODELS["gtm"]
        t_hcxl = task_runtime_seconds(model, 100, HCXL, concurrent_workers=8)
        t_l = task_runtime_seconds(model, 100, L, concurrent_workers=2)
        t_hm = task_runtime_seconds(model, 100, HM4XL, concurrent_workers=8)
        assert 20 < t_hcxl < 60
        # The Figure 13 ordering: HM4XL < L < HCXL.
        assert t_hm < t_l < t_hcxl

    def test_memory_fraction_dominates_on_crowded_hcxl(self):
        """'Highly memory intensive': with 8 workers sharing the HCXL
        bus, the memory term must exceed the CPU term."""
        model = APP_PERF_MODELS["gtm"]
        cpu = 100 * model.cpu_ghz_seconds_per_unit / HCXL.clock_ghz
        mem = 100 * model.mem_bytes_per_unit / (HCXL.mem_bandwidth_gbps * 1e9 / 8)
        assert mem > cpu * 0.9

    def test_azure_small_uncontended(self):
        model = APP_PERF_MODELS["gtm"]
        alone = task_runtime_seconds(model, 100, AZ_SMALL, concurrent_workers=1)
        assert 20 < alone < 45


class TestCrossAppContrasts:
    def test_cap3_is_the_compute_bound_one(self):
        """Cap3's memory fraction must stay negligible — 'memory is not
        a bottleneck' (Section 4.1)."""
        model = APP_PERF_MODELS["cap3"]
        cpu = 458 * model.cpu_ghz_seconds_per_unit / HCXL.clock_ghz
        mem = 458 * model.mem_bytes_per_unit / (HCXL.mem_bandwidth_gbps * 1e9 / 8)
        assert mem < 0.1 * cpu

    def test_blast_is_the_memory_capacity_one(self):
        assert APP_PERF_MODELS["blast"].shared_working_set_gb > 8.0
        assert APP_PERF_MODELS["cap3"].shared_working_set_gb == 0.0
        assert APP_PERF_MODELS["gtm"].shared_working_set_gb == 0.0

    def test_gtm_is_the_bandwidth_one(self):
        gtm = APP_PERF_MODELS["gtm"]
        blast = APP_PERF_MODELS["blast"]
        cap3 = APP_PERF_MODELS["cap3"]
        # Bytes moved per GHz-second of compute: GTM far ahead.
        def intensity(m):
            return m.mem_bytes_per_unit / m.cpu_ghz_seconds_per_unit

        assert intensity(gtm) > 10 * intensity(blast)
        assert intensity(gtm) > 100 * intensity(cap3)
