"""Tests for reverse-complement handling in the assembler."""

import numpy as np
import pytest

from repro.apps.cap3 import (
    Cap3Params,
    assemble,
    reverse_complement,
)
from repro.apps.fasta import FastaRecord


def random_genome(length, seed=0):
    rng = np.random.default_rng(seed)
    return "".join("ACGT"[i] for i in rng.integers(0, 4, size=length))


def shotgun_both_strands(genome, read_len=100, step=50, seed=0):
    """Tiled reads, each randomly on the forward or reverse strand."""
    rng = np.random.default_rng(seed)
    reads = []
    strands = {}
    for n, start in enumerate(range(0, len(genome) - read_len + 1, step)):
        fragment = genome[start : start + read_len]
        if rng.random() < 0.5:
            fragment = reverse_complement(fragment)
            strands[f"read{n}"] = "-"
        else:
            strands[f"read{n}"] = "+"
        reads.append(FastaRecord(id=f"read{n}", seq=fragment))
    return reads, strands


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAA") == "TTTT"
        assert reverse_complement("ACGTN") == "NACGT"
        assert reverse_complement("") == ""

    def test_involution(self):
        genome = random_genome(200, seed=1)
        assert reverse_complement(reverse_complement(genome)) == genome


class TestMixedStrandAssembly:
    def test_mixed_strand_reads_reconstruct_genome(self):
        genome = random_genome(500, seed=2)
        reads, _ = shotgun_both_strands(genome, seed=3)
        result = assemble(reads)
        assert len(result.contigs) == 1
        contig = result.contigs[0].seq
        # The consensus is the genome or its reverse complement.
        assert contig in (genome, reverse_complement(genome))
        assert result.singletons == []

    def test_strands_recorded_in_layout(self):
        genome = random_genome(400, seed=4)
        reads, truth = shotgun_both_strands(genome, seed=5)
        result = assemble(reads)
        (contig,) = result.contigs
        assert set(contig.strands) == {r.id for r in reads}
        # The assembler may settle on either global orientation; strand
        # calls must match the truth up to a global flip.
        calls = [contig.strands[rid] for rid in sorted(truth)]
        expected = [truth[rid] for rid in sorted(truth)]
        flipped = ["-" if s == "+" else "+" for s in expected]
        assert calls in (expected, flipped)

    def test_all_reverse_reads_assemble(self):
        genome = random_genome(400, seed=6)
        reads = [
            FastaRecord(
                id=f"r{i}",
                seq=reverse_complement(genome[s : s + 100]),
            )
            for i, s in enumerate(range(0, 301, 50))
        ]
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert result.contigs[0].seq in (genome, reverse_complement(genome))

    def test_disabled_flag_falls_back_to_forward_only(self):
        genome = random_genome(400, seed=7)
        reads, strands = shotgun_both_strands(genome, seed=8)
        if all(s == "+" for s in strands.values()):
            pytest.skip("random draw produced no reverse reads")
        off = assemble(
            reads, Cap3Params(handle_reverse_complements=False)
        )
        on = assemble(reads)
        # Forward-only mode fragments the assembly that RC mode completes.
        assert len(on.contigs) == 1
        assert (
            len(off.contigs) != 1
            or len(off.singletons) > 0
            or off.contigs[0].seq not in (genome, reverse_complement(genome))
        )

    def test_forward_only_data_unaffected_by_rc_support(self):
        genome = random_genome(400, seed=9)
        reads = [
            FastaRecord(id=f"r{i}", seq=genome[s : s + 100])
            for i, s in enumerate(range(0, 301, 50))
        ]
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert result.contigs[0].seq == genome
        assert all(s == "+" for s in result.contigs[0].strands.values())
        assert result.stats["reads_flipped"] == 0

    def test_stats_report_flips(self):
        genome = random_genome(400, seed=10)
        reads, strands = shotgun_both_strands(genome, seed=11)
        result = assemble(reads)
        n_minus = sum(1 for s in strands.values() if s == "-")
        n_plus = len(strands) - n_minus
        # Flips equal whichever orientation lost the majority vote (the
        # component root's strand is kept).
        assert result.stats["reads_flipped"] in (n_minus, n_plus)
