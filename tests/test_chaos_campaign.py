"""Tests for the chaos campaign study and its CLI surface."""

import io
import json

import pytest

from repro.chaos import (
    CAMPAIGN_MITIGATIONS,
    chaos_study,
    mitigation_settings,
    render_resilience,
    serialize_rows,
)
from repro.cli import main


def small_study(jobs=1, **kwargs):
    defaults = dict(
        apps=("cap3",),
        intensities=(0.0, 1.0),
        mitigations=("none",),
        n_files=8,
        horizon_s=60.0,
        seed=13,
        cache=None,
    )
    defaults.update(kwargs)
    return chaos_study(jobs=jobs, **defaults)


class TestMitigationSettings:
    def test_axis_mapping(self):
        assert mitigation_settings("none") == (None, None)
        retry, spec = mitigation_settings("retry+speculation")
        assert retry is not None and spec is not None
        retry_only, no_spec = mitigation_settings("retry")
        assert retry_only is not None and no_spec is None
        no_retry, spec_only = mitigation_settings("speculation")
        assert no_retry is None and spec_only is not None

    def test_unknown_mitigation_raises(self):
        with pytest.raises(KeyError):
            mitigation_settings("prayer")

    def test_axis_is_least_to_most_defended(self):
        assert CAMPAIGN_MITIGATIONS[0] == "none"
        assert CAMPAIGN_MITIGATIONS[-1] == "retry+speculation"


class TestStudy:
    def test_rows_follow_grid_order_with_baseline_first(self):
        rows = small_study(mitigations=("retry",), intensities=(1.0,))
        # The fault-free unmitigated baseline is prepended when missing.
        assert (rows[0].intensity, rows[0].mitigation) == (0.0, "none")
        assert rows[0].makespan_inflation == 1.0
        assert (rows[1].intensity, rows[1].mitigation) == (1.0, "retry")

    def test_faults_inflate_makespan(self):
        rows = small_study()
        baseline, noisy = rows
        assert noisy.faults_injected > 0
        assert noisy.makespan_inflation > 1.0
        assert baseline.faults_injected == 0

    def test_goodput_accounting(self):
        rows = small_study()
        for row in rows:
            assert row.completed == 8
            assert row.goodput_tasks_per_hour == pytest.approx(
                row.completed / (row.makespan_s / 3600.0)
            )

    def test_same_seed_byte_identical_json(self):
        assert serialize_rows(small_study()) == serialize_rows(small_study())

    def test_jobs_do_not_change_the_report(self):
        assert serialize_rows(small_study(jobs=1)) == serialize_rows(
            small_study(jobs=2)
        )

    def test_render_resilience_table(self):
        text = render_resilience(small_study())
        assert "Chaos campaign" in text
        assert "inflation" in text
        assert "MTTR" in text


class TestCli:
    def test_chaos_smoke_json_artifact(self, tmp_path):
        report = tmp_path / "resilience.json"
        out = io.StringIO()
        code = main(
            [
                "chaos", "--smoke", "--files", "8", "--jobs", "1",
                "--no-cache", "--json", str(report),
            ],
            out=out,
        )
        assert code == 0
        assert "Chaos campaign" in out.getvalue()
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload
        cells = {(row["intensity"], row["mitigation"]) for row in payload}
        assert (0.0, "none") in cells
        assert (1.0, "retry+speculation") in cells
        for row in payload:
            assert row["completed"] == 8.0 or row["completed"] == 8
