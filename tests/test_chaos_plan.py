"""Tests for the seeded chaos schedule (repro.chaos.plan)."""

import json

import pytest

from repro.chaos import ChaosEvent, ChaosPlan


class TestCompile:
    def test_same_seed_same_bytes(self):
        a = ChaosPlan.at_intensity(1.0, seed=7, horizon_s=300.0)
        b = ChaosPlan.at_intensity(1.0, seed=7, horizon_s=300.0)
        assert a.compile() == b.compile()
        assert a.events_json() == b.events_json()

    def test_different_seed_different_schedule(self):
        a = ChaosPlan.at_intensity(1.0, seed=1, horizon_s=300.0)
        b = ChaosPlan.at_intensity(1.0, seed=2, horizon_s=300.0)
        assert a.events_json() != b.events_json()

    def test_events_sorted_and_within_horizon(self):
        plan = ChaosPlan.at_intensity(2.0, seed=3, horizon_s=120.0)
        events = plan.compile()
        assert len(events) == plan.total_events > 0
        times = [e.at_s for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 120.0 for t in times)

    def test_compile_is_pure(self):
        plan = ChaosPlan.at_intensity(1.0, seed=5)
        first = plan.compile()
        assert plan.compile() == first  # no hidden state between calls

    def test_events_json_round_trips(self):
        plan = ChaosPlan.at_intensity(1.0, seed=9)
        payload = json.loads(plan.events_json())
        assert len(payload) == plan.total_events
        assert all(
            set(e) == {"at_s", "kind", "target", "duration_s", "magnitude"}
            for e in payload
        )

    def test_event_to_dict(self):
        event = ChaosEvent(at_s=1.5, kind="worker_crash", target=42)
        assert event.to_dict() == {
            "at_s": 1.5,
            "kind": "worker_crash",
            "target": 42,
            "duration_s": 0.0,
            "magnitude": 0.0,
        }


class TestIntensityPresets:
    def test_zero_intensity_is_fault_free(self):
        plan = ChaosPlan.at_intensity(0.0, seed=11)
        assert plan.total_events == 0
        assert plan.compile() == ()
        assert json.loads(plan.events_json()) == []

    def test_unit_intensity_covers_every_family(self):
        plan = ChaosPlan.at_intensity(1.0, seed=11)
        kinds = {e.kind for e in plan.compile()}
        assert kinds == {
            "worker_crash",
            "preemption_wave",
            "queue_chaos",
            "storage_chaos",
            "slow_node",
        }

    def test_intensity_scales_event_counts(self):
        one = ChaosPlan.at_intensity(1.0, seed=11)
        three = ChaosPlan.at_intensity(3.0, seed=11)
        assert three.total_events > one.total_events
        assert three.worker_crashes == 9

    def test_probabilities_are_capped(self):
        plan = ChaosPlan.at_intensity(100.0, seed=11)
        assert plan.queue_miss_probability <= 0.5
        assert plan.storage_error_rate <= 0.8

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan.at_intensity(-0.1)

    def test_scaled_multiplies_counts(self):
        plan = ChaosPlan.at_intensity(1.0, seed=11)
        doubled = plan.scaled(2.0)
        assert doubled.worker_crashes == 2 * plan.worker_crashes
        assert doubled.seed == plan.seed


class TestValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            ChaosPlan(horizon_s=0.0)

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            ChaosPlan(worker_crashes=-1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            ChaosPlan(preemption_fraction=0.0)
        with pytest.raises(ValueError):
            ChaosPlan(slow_factor=1.5)
