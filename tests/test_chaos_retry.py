"""Tests for the budget-capped backoff policy (repro.chaos.retry)."""

import numpy as np
import pytest

from repro.chaos import RetryPolicy, run_with_retry
from repro.sim import Environment


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestBackoffMath:
    def test_no_jitter_sequence_is_exponential(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=0.5, max_delay_s=30.0,
            multiplier=2.0, jitter="none",
        )
        delays = [policy.backoff_s(n) for n in range(1, 6)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0]

    def test_cap_clamps_at_max_delay(self):
        policy = RetryPolicy(
            attempts=20, base_delay_s=1.0, max_delay_s=8.0, jitter="none"
        )
        assert policy.backoff_s(4) == 8.0
        assert policy.backoff_s(19) == 8.0

    def test_full_jitter_bounds_under_pinned_seed(self):
        policy = RetryPolicy(attempts=8, base_delay_s=0.5, max_delay_s=30.0)
        rng = np.random.default_rng(42)
        for attempt in range(1, 8):
            delay = policy.backoff_s(attempt, rng)
            assert 0.0 <= delay <= policy.cap_s(attempt)

    def test_full_jitter_is_deterministic_given_seed(self):
        policy = RetryPolicy(attempts=8)
        a = [policy.backoff_s(n, np.random.default_rng(7)) for n in (1, 2, 3)]
        b = [policy.backoff_s(n, np.random.default_rng(7)) for n in (1, 2, 3)]
        assert a == b

    def test_full_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            RetryPolicy().backoff_s(1)

    def test_no_jitter_consumes_no_draws(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        RetryPolicy(jitter="none").backoff_s(2, rng)
        assert rng.bit_generator.state == before

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().cap_s(0)

    def test_fixed_policy_is_constant_interval(self):
        policy = RetryPolicy.fixed(attempts=241, delay_s=0.5)
        assert policy.attempts == 241
        assert policy.jitter == "none"
        assert [policy.backoff_s(n) for n in (1, 10, 240)] == [0.5, 0.5, 0.5]


class TestValidation:
    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="half")


class _Flaky:
    """A DES request that fails ``n_failures`` times, then succeeds."""

    def __init__(self, env, n_failures, error=ConnectionError):
        self.env = env
        self.n_failures = n_failures
        self.error = error
        self.calls = 0

    def request(self):
        self.calls += 1
        yield self.env.timeout(1.0)
        if self.calls <= self.n_failures:
            raise self.error(f"attempt {self.calls} failed")
        return "payload"


class TestRunWithRetry:
    def test_succeeds_after_transient_failures(self):
        env = Environment()
        flaky = _Flaky(env, n_failures=2)
        policy = RetryPolicy(attempts=5, jitter="none", base_delay_s=0.5)
        result = drive(
            env, run_with_retry(env, policy, flaky.request)
        )
        assert result == "payload"
        assert flaky.calls == 3
        # 3 attempts of 1 s plus backoffs of 0.5 and 1.0 s.
        assert env.now == pytest.approx(4.5)

    def test_budget_exhaustion_reraises_original_error(self):
        env = Environment()
        flaky = _Flaky(env, n_failures=99)
        policy = RetryPolicy(attempts=3, jitter="none", base_delay_s=0.5)
        with pytest.raises(ConnectionError, match="attempt 3 failed"):
            drive(env, run_with_retry(env, policy, flaky.request))
        assert flaky.calls == 3  # budget includes the first try
        # No backoff after the final failure: 3 s work + 0.5 + 1.0 sleep.
        assert env.now == pytest.approx(4.5)

    def test_non_retryable_error_propagates_immediately(self):
        env = Environment()
        flaky = _Flaky(env, n_failures=99, error=KeyError)
        policy = RetryPolicy(attempts=5, jitter="none")
        with pytest.raises(KeyError):
            drive(
                env,
                run_with_retry(
                    env, policy, flaky.request, retryable=(ConnectionError,)
                ),
            )
        assert flaky.calls == 1

    def test_full_jitter_delays_come_from_caller_rng(self):
        def play(seed):
            env = Environment()
            flaky = _Flaky(env, n_failures=3)
            policy = RetryPolicy(attempts=5, base_delay_s=0.5)
            drive(
                env,
                run_with_retry(
                    env, policy, flaky.request,
                    rng=np.random.default_rng(seed),
                ),
            )
            return env.now

        assert play(1) == play(1)
        assert play(1) != play(2)
