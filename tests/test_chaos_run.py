"""End-to-end chaos injection against the simulated Classic Cloud."""

import pytest

from repro.chaos import ChaosPlan, RetryPolicy, SpeculationPolicy
from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan, WorkerCrash
from repro.core.application import get_application
from repro.obs import Observability, observe
from repro.workloads.genome import cap3_task_specs


def chaos_config(**kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        seed=13,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


def run(config, n_files=24):
    tasks = cap3_task_specs(n_files, reads_per_file=200)
    result = ClassicCloudFramework(config).run(
        get_application("cap3"), tasks
    )
    return tasks, result


class TestInjection:
    def test_chaos_run_completes_every_task(self, cap3):
        plan = ChaosPlan.at_intensity(1.0, seed=5, horizon_s=100.0)
        tasks, result = run(chaos_config(chaos=plan))
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert result.extras["chaos_faults_injected"] > 0

    def test_chaos_inflates_makespan(self, cap3):
        _, quiet = run(chaos_config())
        plan = ChaosPlan.at_intensity(1.0, seed=5, horizon_s=100.0)
        _, noisy = run(chaos_config(chaos=plan))
        assert noisy.makespan_seconds > quiet.makespan_seconds

    def test_chaos_run_is_deterministic(self, cap3):
        plan = ChaosPlan.at_intensity(1.0, seed=5, horizon_s=100.0)
        _, a = run(chaos_config(chaos=plan))
        _, b = run(chaos_config(chaos=plan))
        assert a.makespan_seconds == b.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract
        assert a.extras == b.extras

    def test_legacy_extras_unchanged_without_chaos(self, cap3):
        _, result = run(chaos_config())
        assert not any(
            key.startswith("chaos_") or key.startswith("speculative")
            for key in result.extras
        )
        assert "redundant_fraction" not in result.extras


class TestSpeculation:
    def test_backups_never_double_count(self, cap3):
        config = chaos_config(
            fault_plan=FaultPlan(
                straggler_probability=0.3, straggler_slowdown=8.0
            ),
            speculation=SpeculationPolicy(
                poll_s=10.0, min_completed=3, threshold_multiplier=1.5
            ),
        )
        tasks, result = run(config)
        extras = result.extras
        # Every admitted task completes exactly once, however many
        # backup copies ran: completed == admitted, never more.
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert extras["tasks_completed"] == len(tasks)
        assert extras["speculative_wins"] <= extras["speculative_launched"]
        # One kept result per task: exactly len(tasks) distinct ids in
        # the record stream, and no task is counted completed twice.
        assert len({r.task_id for r in result.records}) == len(tasks)
        assert len(result.completed) == len(tasks)

    def test_retry_mitigation_preserves_completion(self, cap3):
        plan = ChaosPlan.at_intensity(1.0, seed=5, horizon_s=100.0)
        config = chaos_config(
            chaos=plan,
            retry_policy=RetryPolicy(
                attempts=6, base_delay_s=0.5, max_delay_s=15.0
            ),
        )
        tasks, result = run(config)
        assert result.completed_task_ids == {t.task_id for t in tasks}


class TestBusyGauge:
    def test_mid_task_crash_closes_the_busy_gauge(self, cap3):
        """Regression: a worker interrupted mid-task must emit the
        paired ``-1`` busy sample; historically the end sentinel was
        skipped and the gauge read one busy worker forever."""
        config = chaos_config(
            fault_plan=FaultPlan(
                worker_crashes=[
                    WorkerCrash(worker_index=0, at_time=5.0),
                    WorkerCrash(worker_index=3, at_time=9.0),
                ]
            )
        )
        tasks = cap3_task_specs(24, reads_per_file=200)
        with observe(Observability.make(label="busy-gauge")) as obs:
            result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        series = obs.timeline.series("workers.busy")
        assert series, "busy gauge never sampled"
        assert series[-1][1] == 0
        assert min(value for _, value in series) >= 0
