"""Tests for the local (real-execution) Classic Cloud framework."""

import time

import numpy as np
import pytest

from repro.apps.executables import (
    BlastExecutable,
    Cap3Executable,
    GtmInterpolationExecutable,
)
from repro.apps.fasta import read_fasta
from repro.apps.gtm import train_gtm
from repro.classiccloud import LocalClassicCloud, LocalQueue
from repro.workloads.genome import write_cap3_workload
from repro.workloads.protein import write_blast_workload
from repro.workloads.pubchem import write_gtm_workload


class TestLocalQueue:
    def test_send_receive_delete(self):
        q = LocalQueue(visibility_timeout_s=10.0)
        q.send("a")
        msg = q.receive()
        assert msg.body == "a"
        assert q.delete(msg) is True
        assert q.receive() is None
        assert q.approximate_size() == 0

    def test_empty_receive_returns_none(self):
        q = LocalQueue()
        assert q.receive() is None

    def test_visibility_timeout_reappearance(self):
        q = LocalQueue(visibility_timeout_s=0.05)
        q.send("t")
        first = q.receive()
        assert first is not None
        assert q.receive() is None  # hidden
        time.sleep(0.08)
        second = q.receive()
        assert second is not None
        assert second.message_id == first.message_id
        assert second.receive_count == 2
        assert q.reappearances == 1

    def test_stale_receipt_delete_fails_after_rereceive(self):
        q = LocalQueue(visibility_timeout_s=0.05)
        q.send("t")
        old = q.receive()
        time.sleep(0.08)
        new = q.receive()
        assert q.delete(old) is False
        assert q.delete(new) is True

    def test_delete_after_reappearance_but_before_rereceive_succeeds(self):
        q = LocalQueue(visibility_timeout_s=0.05)
        q.send("t")
        msg = q.receive()
        time.sleep(0.08)
        # Reappeared but nobody re-received it yet: original worker can
        # still claim completion.
        assert q.delete(msg) is True
        assert q.receive() is None

    def test_fifo_within_visible(self):
        q = LocalQueue()
        for i in range(5):
            q.send(i)
        got = [q.receive().body for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            LocalQueue(visibility_timeout_s=0)


class TestLocalCap3Run:
    def test_end_to_end_assembly(self, tmp_path):
        tasks = write_cap3_workload(tmp_path, n_files=6, reads_per_file=12)
        runner = LocalClassicCloud(n_workers=3)
        result = runner.run(Cap3Executable(), tasks)
        assert result.n_tasks == 6
        assert len(result.completed_task_ids) == 6
        for task in tasks:
            out = read_fasta(task.output_key)
            assert out, f"empty output for {task.task_id}"
            assert out[0].id.startswith("Contig") or out[0].id.startswith("read")

    def test_replicated_files_produce_identical_outputs(self, tmp_path):
        tasks = write_cap3_workload(
            tmp_path, n_files=4, reads_per_file=10, replicated=True
        )
        LocalClassicCloud(n_workers=2).run(Cap3Executable(), tasks)
        contents = {open(t.output_key).read() for t in tasks}
        assert len(contents) == 1

    def test_single_worker_matches_parallel(self, tmp_path):
        tasks_a = write_cap3_workload(
            tmp_path / "a", n_files=4, reads_per_file=10, seed=5
        )
        tasks_b = write_cap3_workload(
            tmp_path / "b", n_files=4, reads_per_file=10, seed=5
        )
        LocalClassicCloud(n_workers=1).run(Cap3Executable(), tasks_a)
        LocalClassicCloud(n_workers=4).run(Cap3Executable(), tasks_b)
        for ta, tb in zip(tasks_a, tasks_b):
            assert open(ta.output_key).read() == open(tb.output_key).read()

    def test_crashed_worker_task_recovered(self, tmp_path):
        """Worker 0 dies on its first receive; the visibility timeout
        returns its task to the queue and another worker completes it."""
        tasks = write_cap3_workload(tmp_path, n_files=5, reads_per_file=10)
        runner = LocalClassicCloud(
            n_workers=3,
            visibility_timeout_s=0.2,
            crash_worker_on_receive={0: 1},
            timeout_s=60.0,
        )
        result = runner.run(Cap3Executable(), tasks)
        assert len(result.completed_task_ids) == 5
        assert result.extras["reappearances"] >= 1
        for task in tasks:
            assert read_fasta(task.output_key)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            LocalClassicCloud().run(Cap3Executable(), [])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            LocalClassicCloud(n_workers=0)


class TestLocalBlastRun:
    def test_end_to_end_search(self, tmp_path):
        tasks, db = write_blast_workload(
            tmp_path, n_files=4, queries_per_file=5, db_sequences=15
        )
        result = LocalClassicCloud(n_workers=2).run(BlastExecutable(db), tasks)
        assert len(result.completed_task_ids) == 4
        # Roughly half the queries are planted homologs; most output
        # files should contain hits.
        hit_files = sum(
            1 for t in tasks if open(t.output_key).read().strip()
        )
        assert hit_files >= 2


class TestLocalGtmRun:
    def test_end_to_end_interpolation(self, tmp_path):
        tasks, sample = write_gtm_workload(
            tmp_path, n_files=4, points_per_file=80, dimensions=8
        )
        model = train_gtm(sample, latent_per_dim=5, rbf_per_dim=3, iterations=5)
        result = LocalClassicCloud(n_workers=2).run(
            GtmInterpolationExecutable(model), tasks
        )
        assert len(result.completed_task_ids) == 4
        for task in tasks:
            latent = np.load(task.output_key)
            assert latent.shape == (80, 2)
            assert np.abs(latent).max() <= 1.0 + 1e-9
