"""Tests for the simulated Classic Cloud framework."""

import pytest

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan, WorkerCrash
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs


def small_config(**kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        seed=7,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


class TestConfig:
    def test_label_matches_paper_axis_format(self):
        assert small_config().label == "HCXL - 2 x 8"

    def test_worker_slots_bounded_by_cores(self):
        with pytest.raises(ValueError, match="exceed"):
            small_config(workers_per_instance=9)
        with pytest.raises(ValueError, match="exceed"):
            small_config(workers_per_instance=5, threads_per_worker=2)

    def test_totals(self):
        config = small_config()
        assert config.total_cores == 16
        assert config.total_workers == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(n_instances=0)
        with pytest.raises(ValueError):
            small_config(threads_per_worker=0)


class TestHappyPath:
    def test_all_tasks_complete_exactly_once(self, cap3):
        tasks = cap3_task_specs(40, reads_per_file=200)
        result = ClassicCloudFramework(small_config()).run(cap3, tasks)
        assert result.n_tasks == 40
        assert result.completed_task_ids == {t.task_id for t in tasks}
        winners = [r for r in result.records if r.won]
        assert len(winners) == 40
        assert result.makespan_seconds > 0

    def test_makespan_scales_with_tasks(self, cap3):
        fw = ClassicCloudFramework(small_config())
        small = fw.run(cap3, cap3_task_specs(16, reads_per_file=200))
        fw2 = ClassicCloudFramework(small_config())
        large = fw2.run(cap3, cap3_task_specs(64, reads_per_file=200))
        # 4x the tasks on the same cores: roughly 4x the time.
        ratio = large.makespan_seconds / small.makespan_seconds
        assert 2.5 < ratio < 6.0

    def test_more_instances_finish_faster(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        two = ClassicCloudFramework(small_config(n_instances=2)).run(cap3, tasks)
        eight = ClassicCloudFramework(small_config(n_instances=8)).run(cap3, tasks)
        assert eight.makespan_seconds < two.makespan_seconds
        speedup = two.makespan_seconds / eight.makespan_seconds
        assert speedup > 2.5  # ideal 4x, allow substantial overhead

    def test_deterministic_given_seed(self, cap3):
        tasks = cap3_task_specs(20, reads_per_file=200)
        a = ClassicCloudFramework(small_config(seed=42)).run(cap3, tasks)
        b = ClassicCloudFramework(small_config(seed=42)).run(cap3, tasks)
        assert a.makespan_seconds == b.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract
        assert a.billing.total_cost == b.billing.total_cost

    def test_billing_populated(self, cap3):
        tasks = cap3_task_specs(20, reads_per_file=200)
        result = ClassicCloudFramework(small_config()).run(cap3, tasks)
        report = result.billing
        assert report.compute_cost >= 2 * 0.68  # two HCXL, >= 1 hour each
        assert report.queue_requests > 3 * 20  # send+receive+delete+monitor
        assert report.storage_requests >= 2 * 20  # get input + put output
        assert report.total_cost > report.compute_cost

    def test_task_records_have_phases(self, cap3):
        tasks = cap3_task_specs(10, reads_per_file=200)
        result = ClassicCloudFramework(small_config()).run(cap3, tasks)
        for record in result.records:
            assert record.download_time > 0
            assert record.compute_time > 0
            assert record.upload_time > 0
            assert record.finished_at > record.started_at

    def test_empty_task_list_rejected(self, cap3):
        with pytest.raises(ValueError, match="no tasks"):
            ClassicCloudFramework(small_config()).run(cap3, [])


class TestAzure:
    def test_azure_small_fleet(self, cap3):
        config = ClassicCloudConfig(
            provider="azure",
            instance_type="Small",
            n_instances=16,
            workers_per_instance=1,
            seed=3,
            fault_plan=FaultPlan.none(),
            consistency_window_s=0.0,
        )
        tasks = cap3_task_specs(32, reads_per_file=200)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert result.backend == "classiccloud-azure"
        # Azure Small: $0.12/hour, 16 instances.
        assert result.billing.compute_cost == pytest.approx(16 * 0.12)


class TestPreload:
    def test_blast_preload_excluded_from_makespan(self):
        blast = get_application("blast")
        from repro.workloads.protein import blast_task_specs

        tasks = blast_task_specs(16, inhomogeneous_base=False)
        config = small_config(n_instances=2)
        result = ClassicCloudFramework(config).run(blast, tasks)
        assert result.extras["preload_seconds"] > 0
        # The 2.9 GB download at 1 Gbps NIC takes ~25s + 120s extract.
        assert result.extras["preload_seconds"] > 100


class TestFaultTolerance:
    def test_worker_crash_recovers_via_visibility_timeout(self, cap3):
        tasks = cap3_task_specs(24, reads_per_file=200)
        plan = FaultPlan(
            worker_crashes=[WorkerCrash(worker_index=0, at_time=30.0)],
            queue_miss_probability=0.0,
        )
        config = small_config(fault_plan=plan, visibility_timeout_s=120.0)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        # The crashed worker's in-flight message reappeared.
        assert result.extras["reappearances"] >= 1

    def test_crash_with_restart(self, cap3):
        tasks = cap3_task_specs(24, reads_per_file=200)
        plan = FaultPlan(
            worker_crashes=[
                WorkerCrash(worker_index=0, at_time=30.0, restart_after=60.0)
            ],
            queue_miss_probability=0.0,
        )
        config = small_config(fault_plan=plan, visibility_timeout_s=120.0)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_many_crashes_still_complete(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        plan = FaultPlan(
            worker_crashes=[
                WorkerCrash(worker_index=i, at_time=20.0 + i * 5) for i in range(8)
            ],
            queue_miss_probability=0.0,
        )
        config = small_config(fault_plan=plan, visibility_timeout_s=150.0)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_short_visibility_timeout_causes_duplicates(self, cap3):
        """A visibility timeout shorter than the task time guarantees
        re-deliveries — the ablation the paper's design implies."""
        tasks = cap3_task_specs(12, reads_per_file=200)
        config = small_config(visibility_timeout_s=10.0)  # tasks take ~50s
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert result.extras["reappearances"] > 0
        assert result.duplicate_executions > 0

    def test_storage_errors_retried(self, cap3):
        tasks = cap3_task_specs(12, reads_per_file=200)
        plan = FaultPlan(storage_error_rate=0.2, queue_miss_probability=0.0)
        config = small_config(fault_plan=plan)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_eventual_consistency_tolerated(self, cap3):
        tasks = cap3_task_specs(12, reads_per_file=200)
        config = small_config(consistency_window_s=5.0)
        result = ClassicCloudFramework(config).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}


class TestSequentialEstimate:
    def test_t1_close_to_ideal_parallel_work(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        fw = ClassicCloudFramework(small_config())
        t1 = fw.estimate_sequential_time(cap3, tasks)
        result = fw.run(cap3, tasks)
        cores = fw.config.total_cores
        efficiency = t1 / (cores * result.makespan_seconds)
        # Low parallelization overheads, as the paper finds for Cap3.
        assert 0.6 < efficiency <= 1.0
