"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCatalog:
    def test_prints_all_catalogs(self):
        code, text = run_cli("catalog")
        assert code == 0
        assert "Table 1: EC2 instance types" in text
        assert "HCXL" in text and "$0.68/h" in text
        assert "Table 2: Azure instance types" in text
        assert "Bare-metal clusters" in text
        assert "internal-tco" in text


class TestRun:
    def test_default_run_cap3_ec2(self):
        code, text = run_cli(
            "run", "--files", "16", "--instances", "2"
        )
        assert code == 0
        assert "cap3 on ec2" in text
        assert "parallel efficiency" in text
        assert "compute cost" in text

    def test_run_gtm_on_hadoop(self):
        code, text = run_cli(
            "run", "--app", "gtm", "--backend", "hadoop",
            "--files", "16", "--nodes", "2", "--cluster", "gtm-hadoop",
        )
        assert code == 0
        assert "gtm on hadoop" in text
        assert "compute cost" not in text  # clusters don't bill

    def test_run_dryadlinq_defaults_to_windows_cluster(self):
        code, text = run_cli(
            "run", "--app", "cap3", "--backend", "dryadlinq",
            "--files", "16", "--nodes", "2",
        )
        assert code == 0
        assert "dryadlinq" in text

    def test_run_azure_with_shape(self):
        code, text = run_cli(
            "run", "--backend", "azure", "--files", "8",
            "--instances", "4", "--instance-type", "Medium",
            "--workers", "2",
        )
        assert code == 0
        assert "cap3 on azure" in text

    def test_inhomogeneous_flag(self):
        code, text = run_cli(
            "run", "--files", "16", "--instances", "2", "--inhomogeneous"
        )
        assert code == 0

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--app", "hmmer")

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--backend", "slurm")


class TestCost:
    def test_small_cost_comparison(self):
        code, text = run_cli("cost", "--files", "256")
        assert code == 0
        assert "Cost comparison (256 FASTA files)" in text
        assert "Compute Cost" in text
        assert "80% utilization" in text


class TestFigures:
    def test_lists_available_without_argument(self):
        code, text = run_cli("figures")
        assert code == 0
        assert "fig3_4" in text and "fig14_15" in text

    def test_renders_a_figure(self):
        code, text = run_cli("figures", "fig3_4")
        assert code == 0
        assert "Figures 3+4" in text
        assert "HCXL - 2 x 8" in text

    def test_unknown_figure_fails_cleanly(self):
        code, text = run_cli("figures", "fig99")
        assert code == 2
        assert "unknown figure" in text


class TestAnalyze:
    def test_analyze_exported_trace(self, tmp_path):
        from repro.cloud.failures import FaultPlan
        from repro.core.application import get_application
        from repro.core.backends import make_backend
        from repro.workloads.genome import cap3_task_specs

        app = get_application("cap3")
        tasks = cap3_task_specs(12, reads_per_file=200)
        result = make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=2
        ).run(app, tasks)
        trace = tmp_path / "trace.json"
        result.to_json(trace)

        code, text = run_cli("analyze", str(trace))
        assert code == 0
        assert "load balance" in text
        assert "time in compute" in text
        assert "|" in text  # the Gantt chart rendered

    def test_missing_trace_fails_cleanly(self):
        code, text = run_cli("analyze", "/nonexistent/trace.json")
        assert code == 2
        assert "no such trace" in text


class TestTrace:
    def test_run_trace_exports_and_summarizes(self, tmp_path):
        import json

        path = tmp_path / "out.json"
        code, text = run_cli(
            "run", "--files", "8", "--instances", "1", "--trace", str(path)
        )
        assert code == 0
        assert "cap3 on ec2" in text  # metrics table still prints
        assert "trace summary" in text
        assert "phase breakdown" in text
        assert f"trace written to {path}" in text
        document = json.loads(path.read_text(encoding="utf-8"))
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(document) == []
        assert document["otherData"]["label"] == "cap3-ec2"

    def test_trace_subcommand_validates_export(self, tmp_path):
        path = tmp_path / "out.json"
        run_cli("run", "--files", "8", "--instances", "1",
                "--trace", str(path))
        code, text = run_cli("trace", str(path))
        assert code == 0
        assert "valid Chrome trace" in text
        assert "task.compute" in text

    def test_trace_subcommand_rejects_invalid(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}', encoding="utf-8")
        code, text = run_cli("trace", str(bad))
        assert code == 2
        assert "invalid Chrome trace" in text

    def test_trace_subcommand_missing_file(self):
        code, text = run_cli("trace", "/nonexistent/out.json")
        assert code == 2
        assert "no such trace" in text

    def test_trace_subcommand_not_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        code, text = run_cli("trace", str(bad))
        assert code == 2
        assert "not JSON" in text

    def test_untraced_run_prints_progress(self):
        code, text = run_cli(
            "run", "--files", "8", "--instances", "1", "--no-cache"
        )
        assert code == 0
        assert "[1/1]" in text
        assert ": done" in text


class TestSweep:
    def test_sweep_prints_shape_table(self):
        code, text = run_cli(
            "sweep", "--app", "cap3", "--files", "8",
            "--jobs", "1", "--no-cache",
        )
        assert code == 0
        assert "cap3 sweep (8 files)" in text
        for shape in ("L - 8 x 2", "XL - 4 x 4", "HCXL - 2 x 8",
                      "HM4XL - 2 x 8"):
            assert shape in text
        assert "[4/4]" in text

    def test_traced_parallel_sweep_merges_workers(self, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        code, text = run_cli(
            "sweep", "--app", "cap3", "--files", "8",
            "--jobs", "2", "--no-cache", "--trace", str(path),
        )
        assert code == 0
        assert "worker process(es) merged" in text
        document = json.loads(path.read_text(encoding="utf-8"))
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(document) == []
        workers = document["otherData"]["workers"]  # one entry per process
        assert len({w["os_pid"] for w in workers}) >= 2
        assert sum(len(w["points"]) for w in workers) == 4

    def test_sweep_rejects_bad_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        code, text = run_cli("sweep", "--app", "cap3", "--files", "8")
        assert code == 2


class TestGendata:
    def test_writes_cap3_workload(self, tmp_path):
        code, text = run_cli(
            "gendata", str(tmp_path / "w"), "--files", "3", "--size", "6"
        )
        assert code == 0
        assert "wrote 3 cap3 input files" in text
        files = list((tmp_path / "w" / "in").glob("*.fa"))
        assert len(files) == 3

    def test_writes_blast_workload(self, tmp_path):
        code, text = run_cli(
            "gendata", "--app", "blast", str(tmp_path / "b"),
            "--files", "2", "--size", "3",
        )
        assert code == 0
        assert "wrote 2 blast input files" in text
        assert "database" in text

    def test_writes_gtm_workload(self, tmp_path):
        code, text = run_cli(
            "gendata", "--app", "gtm", str(tmp_path / "g"),
            "--files", "2", "--size", "50",
        )
        assert code == 0
        assert "training sample" in text
        files = list((tmp_path / "g" / "in").glob("*.npz"))
        assert len(files) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "cap3"
        assert args.backend == "ec2"
        assert args.files == 200
