"""Tests for VM provisioning, hourly billing and cost reports."""

import numpy as np
import pytest

from repro.cloud import (
    AWS_PRICES,
    AZURE_INSTANCE_TYPES,
    AZURE_PRICES,
    CloudProvider,
    CostMeter,
    EC2_INSTANCE_TYPES,
)
from repro.sim import Environment


def make_provider(env, provider="aws", **kwargs):
    defaults = dict(rng=np.random.default_rng(3), boot_time_s=0.0, perf_jitter=0.0)
    defaults.update(kwargs)
    return CloudProvider(env, provider, **defaults)


def test_provision_returns_requested_count():
    env = Environment()
    cloud = make_provider(env)
    instances = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["HCXL"], 16))
    )
    assert len(instances) == 16
    assert all(i.is_running for i in instances)
    assert all(i.machine.cores == 8 for i in instances)


def test_provision_wrong_provider_rejected():
    env = Environment()
    cloud = make_provider(env, provider="azure")
    with pytest.raises(ValueError):
        env.run(until=env.process(cloud.provision(EC2_INSTANCE_TYPES["L"], 1)))


def test_provision_zero_count_rejected():
    env = Environment()
    cloud = make_provider(env)
    with pytest.raises(ValueError):
        env.run(until=env.process(cloud.provision(EC2_INSTANCE_TYPES["L"], 0)))


def test_boot_time_delays_availability():
    env = Environment()
    cloud = make_provider(env, boot_time_s=90.0)
    env.run(until=env.process(cloud.provision(EC2_INSTANCE_TYPES["L"], 4)))
    assert 90.0 * 0.8 <= env.now <= 90.0 * 1.4


def test_perf_jitter_spreads_speed_factors():
    env = Environment()
    cloud = make_provider(env, perf_jitter=0.0156, rng=np.random.default_rng(0))
    instances = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["HCXL"], 64))
    )
    factors = np.array([i.speed_factor for i in instances])
    assert factors.std() == pytest.approx(0.0156, rel=0.5)
    assert abs(factors.mean() - 1.0) < 0.01


def test_hourly_billing_rounds_up():
    """A 10-minute computation pays the full hour (paper's 'Compute Cost')."""
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    cloud = make_provider(env, meter=meter)
    instances = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["HCXL"], 16))
    )
    env.run(until=env.now + 600.0)  # 10 minutes of work
    for inst in instances:
        cloud.terminate(inst)
    report = meter.report()
    assert report.compute_hour_units == 16  # 16 instances x 1 started hour
    assert report.compute_cost == pytest.approx(16 * 0.68)  # Table 4: $10.88
    # Amortized: only the actual sixth of an hour.
    assert report.amortized_compute_cost == pytest.approx(16 * 0.68 / 6.0)


def test_table4_compute_costs():
    """Reproduce Table 4's headline compute numbers exactly."""
    # EC2: 16 HCXL for <=1h -> $10.88.
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    cloud = make_provider(env, meter=meter)
    for inst in env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["HCXL"], 16))
    ):
        env.run(until=env.now)  # no-op; terminate same hour
        cloud.terminate(inst)
    # force at least some uptime
    assert meter.report().compute_cost <= 10.88 + 1e-9

    # Azure: 128 Small for 1h -> $15.36.
    env2 = Environment()
    meter2 = CostMeter(AZURE_PRICES)
    cloud2 = make_provider(env2, provider="azure", meter=meter2)
    instances = env2.run(
        until=env2.process(cloud2.provision(AZURE_INSTANCE_TYPES["Small"], 128))
    )
    env2.run(until=env2.now + 3000.0)
    for inst in instances:
        cloud2.terminate(inst)
    assert meter2.report().compute_cost == pytest.approx(128 * 0.12)  # $15.36


def test_multi_hour_billing():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    cloud = make_provider(env, meter=meter)
    (inst,) = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["L"], 1))
    )
    env.run(until=env.now + 2.5 * 3600)
    cloud.terminate(inst)
    report = meter.report()
    assert report.compute_hour_units == 3
    assert report.compute_cost == pytest.approx(3 * 0.34)
    assert report.amortized_compute_cost == pytest.approx(2.5 * 0.34)


def test_terminate_twice_is_error():
    env = Environment()
    cloud = make_provider(env)
    (inst,) = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["L"], 1))
    )
    cloud.terminate(inst)
    with pytest.raises(ValueError):
        cloud.terminate(inst)


def test_terminate_all():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    cloud = make_provider(env, meter=meter)
    env.run(until=env.process(cloud.provision(EC2_INSTANCE_TYPES["XL"], 4)))
    env.run(until=env.now + 100.0)
    cloud.terminate_all()
    assert all(not i.is_running for i in cloud.instances)
    assert meter.report().compute_hour_units == 4


def test_billing_report_total_and_rows():
    meter = CostMeter(AWS_PRICES)
    meter.record_instance_usage("HCXL", 3600.0 * 16, 0.68)
    meter.record_queue_request(10_000)
    meter.record_stored(1024**3)
    meter.record_transfer(bytes_in=1024**3)
    report = meter.report(storage_months=1.0)
    # Table 4 AWS column: 10.88 + 0.01 + 0.14 + 0.10 = 11.13.
    assert report.compute_cost == pytest.approx(10.88)
    assert report.queue_cost == pytest.approx(0.01)
    assert report.storage_cost == pytest.approx(0.14)
    assert report.transfer_cost == pytest.approx(0.10)
    assert report.total_cost == pytest.approx(11.13)
    labels = [label for label, _ in report.rows()]
    assert labels == [
        "Compute Cost",
        "Queue messages",
        "Storage",
        "Data transfer in/out",
        "Total Cost",
    ]


def test_azure_transfer_out_charged():
    meter = CostMeter(AZURE_PRICES)
    meter.record_instance_usage("Small", 3600.0 * 128, 0.12)
    meter.record_queue_request(10_000)
    meter.record_stored(1024**3)
    meter.record_transfer(bytes_in=1024**3, bytes_out=1024**3)
    report = meter.report()
    # Table 4 Azure column: 15.36 + 0.01 + 0.15 + 0.25 = 15.77.
    assert report.total_cost == pytest.approx(15.77)


def test_effective_clock_uses_speed_factor():
    env = Environment()
    cloud = make_provider(env, perf_jitter=0.0)
    (inst,) = env.run(
        until=env.process(cloud.provision(EC2_INSTANCE_TYPES["HCXL"], 1))
    )
    assert inst.effective_clock_ghz() == pytest.approx(2.5)
    inst.speed_factor = 0.9
    assert inst.effective_clock_ghz() == pytest.approx(2.25)
