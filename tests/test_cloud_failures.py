"""Edge-case tests for the legacy fault plan (repro.cloud.failures)."""

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan, WorkerCrash
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs


def small_config(**kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        seed=7,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


class TestPlanContracts:
    def test_bare_constructor_is_fault_free(self):
        plan = FaultPlan()
        assert plan.worker_crashes == []
        assert plan.queue_miss_probability == 0.0
        assert plan.message_duplicate_probability == 0.0
        assert plan.storage_error_rate == 0.0
        assert plan.straggler_probability == 0.0
        assert plan.poison_task_ids == frozenset()

    def test_none_is_an_alias_for_the_bare_constructor(self):
        assert FaultPlan.none() == FaultPlan()

    def test_paper_default_differs_only_in_queue_miss(self):
        assert FaultPlan.paper_default() == FaultPlan(
            queue_miss_probability=0.02
        )
        assert FaultPlan.paper_default() != FaultPlan.none()

    def test_crashes_for_filters_and_sorts(self):
        plan = FaultPlan(
            worker_crashes=[
                WorkerCrash(worker_index=1, at_time=50.0),
                WorkerCrash(worker_index=0, at_time=20.0),
                WorkerCrash(worker_index=1, at_time=10.0),
            ]
        )
        assert [c.at_time for c in plan.crashes_for(1)] == [10.0, 50.0]
        assert [c.at_time for c in plan.crashes_for(0)] == [20.0]
        assert plan.crashes_for(5) == []

    def test_empty_plan_crashes_for_any_worker(self):
        assert FaultPlan.none().crashes_for(0) == []


class TestEdgeCaseRuns:
    def test_crash_at_time_zero_still_completes(self):
        tasks = cap3_task_specs(16, reads_per_file=200)
        config = small_config(
            fault_plan=FaultPlan(
                worker_crashes=[WorkerCrash(worker_index=0, at_time=0.0)]
            )
        )
        result = ClassicCloudFramework(config).run(
            get_application("cap3"), tasks
        )
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_crash_beyond_run_end_never_fires(self):
        tasks = cap3_task_specs(16, reads_per_file=200)
        quiet = ClassicCloudFramework(small_config()).run(
            get_application("cap3"), tasks
        )
        late = ClassicCloudFramework(
            small_config(
                fault_plan=FaultPlan(
                    worker_crashes=[
                        WorkerCrash(worker_index=0, at_time=1e9)
                    ]
                )
            )
        ).run(get_application("cap3"), tasks)
        assert late.completed_task_ids == {t.task_id for t in tasks}
        # The pending crash never perturbs the run.
        assert late.makespan_seconds == quiet.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract
