"""Tests for the instance-type catalogs (paper Tables 1 and 2)."""

import pytest

from repro.cloud import (
    AZURE_INSTANCE_TYPES,
    EC2_INSTANCE_TYPES,
    InstanceType,
    MachineModel,
    get_instance_type,
)


class TestTable1EC2:
    def test_catalog_matches_table1_costs(self):
        assert EC2_INSTANCE_TYPES["L"].cost_per_hour == 0.34
        assert EC2_INSTANCE_TYPES["XL"].cost_per_hour == 0.68
        assert EC2_INSTANCE_TYPES["HCXL"].cost_per_hour == 0.68
        assert EC2_INSTANCE_TYPES["HM4XL"].cost_per_hour == 2.00

    def test_catalog_matches_table1_memory(self):
        assert EC2_INSTANCE_TYPES["L"].machine.memory_gb == 7.5
        assert EC2_INSTANCE_TYPES["XL"].machine.memory_gb == 15.0
        assert EC2_INSTANCE_TYPES["HCXL"].machine.memory_gb == 7.0
        assert EC2_INSTANCE_TYPES["HM4XL"].machine.memory_gb == 68.4

    def test_catalog_matches_table1_compute_units(self):
        assert EC2_INSTANCE_TYPES["L"].ec2_compute_units == 4
        assert EC2_INSTANCE_TYPES["XL"].ec2_compute_units == 8
        assert EC2_INSTANCE_TYPES["HCXL"].ec2_compute_units == 20
        assert EC2_INSTANCE_TYPES["HM4XL"].ec2_compute_units == 26

    def test_catalog_matches_table1_cores(self):
        assert EC2_INSTANCE_TYPES["L"].machine.cores == 2
        assert EC2_INSTANCE_TYPES["XL"].machine.cores == 4
        assert EC2_INSTANCE_TYPES["HCXL"].machine.cores == 8
        assert EC2_INSTANCE_TYPES["HM4XL"].machine.cores == 8

    def test_hcxl_same_price_as_xl_more_compute(self):
        """The paper highlights HCXL: same cost as XL, more CPU, less RAM."""
        xl, hcxl = EC2_INSTANCE_TYPES["XL"], EC2_INSTANCE_TYPES["HCXL"]
        assert hcxl.cost_per_hour == xl.cost_per_hour
        assert hcxl.machine.compute_ghz_total > xl.machine.compute_ghz_total
        assert hcxl.machine.memory_gb < xl.machine.memory_gb

    def test_small_is_32bit(self):
        assert EC2_INSTANCE_TYPES["Small"].bits == 32

    def test_all_studied_types_are_64bit(self):
        for name in ("L", "XL", "HCXL", "HM4XL"):
            assert EC2_INSTANCE_TYPES[name].bits == 64


class TestTable2Azure:
    def test_catalog_matches_table2_costs(self):
        assert AZURE_INSTANCE_TYPES["Small"].cost_per_hour == 0.12
        assert AZURE_INSTANCE_TYPES["Medium"].cost_per_hour == 0.24
        assert AZURE_INSTANCE_TYPES["Large"].cost_per_hour == 0.48
        assert AZURE_INSTANCE_TYPES["ExtraLarge"].cost_per_hour == 0.96

    def test_catalog_matches_table2_cores(self):
        assert AZURE_INSTANCE_TYPES["Small"].machine.cores == 1
        assert AZURE_INSTANCE_TYPES["Medium"].machine.cores == 2
        assert AZURE_INSTANCE_TYPES["Large"].machine.cores == 4
        assert AZURE_INSTANCE_TYPES["ExtraLarge"].machine.cores == 8

    def test_linear_scaling_of_cost_and_resources(self):
        """Azure features and cost scale linearly with instance size."""
        small = AZURE_INSTANCE_TYPES["Small"]
        for name, factor in (("Medium", 2), ("Large", 4), ("ExtraLarge", 8)):
            big = AZURE_INSTANCE_TYPES[name]
            assert big.cost_per_hour == pytest.approx(small.cost_per_hour * factor)
            assert big.machine.cores == small.machine.cores * factor
            assert big.machine.mem_bandwidth_gbps == pytest.approx(
                small.machine.mem_bandwidth_gbps * factor
            )

    def test_all_azure_instances_are_windows(self):
        for itype in AZURE_INSTANCE_TYPES.values():
            assert itype.machine.os == "windows"

    def test_azure_small_comparable_to_hcxl_core(self):
        """8 Azure Small ~ 1 EC2 HCXL for Cap3 (paper Section 2.1.2).

        Cap3 runs ~12.5% faster on Windows, so 8 Azure-Small effective
        Windows throughput should be within ~15% of one HCXL.
        """
        azure = AZURE_INSTANCE_TYPES["Small"].machine
        hcxl = EC2_INSTANCE_TYPES["HCXL"].machine
        azure_total = 8 * azure.clock_ghz * 1.125  # Windows Cap3 advantage
        assert azure_total == pytest.approx(hcxl.compute_ghz_total, rel=0.15)


class TestMachineModelValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineModel(cores=0, clock_ghz=2.0, memory_gb=4, mem_bandwidth_gbps=5)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            MachineModel(cores=1, clock_ghz=0.0, memory_gb=4, mem_bandwidth_gbps=5)

    def test_rejects_unknown_os(self):
        with pytest.raises(ValueError):
            MachineModel(
                cores=1, clock_ghz=2.0, memory_gb=4, mem_bandwidth_gbps=5, os="beos"
            )

    def test_compute_ghz_total(self):
        m = MachineModel(cores=4, clock_ghz=2.5, memory_gb=8, mem_bandwidth_gbps=6)
        assert m.compute_ghz_total == 10.0


class TestInstanceTypeHelpers:
    def test_lookup_by_name(self):
        assert get_instance_type("aws", "HCXL").name == "HCXL"
        assert get_instance_type("azure", "Small").provider == "azure"

    def test_lookup_by_alias(self):
        assert get_instance_type("aws", "High CPU Extra Large").name == "HCXL"
        assert get_instance_type("aws", "Large").name == "L"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_instance_type("aws", "Gigantic")
        with pytest.raises(KeyError):
            get_instance_type("gcp", "n1")

    def test_with_os_returns_modified_copy(self):
        hcxl = EC2_INSTANCE_TYPES["HCXL"]
        windows = hcxl.with_os("windows")
        assert windows.machine.os == "windows"
        assert hcxl.machine.os == "linux"  # original untouched
        assert windows.cost_per_hour == hcxl.cost_per_hour

    def test_instance_type_rejects_bad_provider(self):
        with pytest.raises(ValueError):
            InstanceType(
                name="x",
                provider="ibm",
                machine=MachineModel(
                    cores=1, clock_ghz=1, memory_gb=1, mem_bandwidth_gbps=1
                ),
                cost_per_hour=0.1,
            )

    def test_instance_type_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            InstanceType(
                name="x",
                provider="aws",
                machine=MachineModel(
                    cores=1, clock_ghz=1, memory_gb=1, mem_bandwidth_gbps=1
                ),
                cost_per_hour=-1.0,
            )
