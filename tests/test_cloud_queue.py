"""Tests for the simulated message queue (SQS / Azure Queue)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cloud import AWS_PRICES, CostMeter, Message, MessageQueue
from repro.cloud.queue import StaleReceiptError
from repro.sim import Environment


def make_queue(env, **kwargs):
    defaults = dict(
        rng=np.random.default_rng(5),
        visibility_timeout_s=30.0,
        request_latency_s=0.010,
        latency_sigma=0.0,
        propagation_delay_s=0.0,
        miss_probability=0.0,
    )
    defaults.update(kwargs)
    return MessageQueue(env, "tasks", **defaults)


def drive(env, gen):
    return env.run(until=env.process(gen))


def test_send_receive_delete_happy_path():
    env = Environment()
    q = make_queue(env)
    drive(env, q.send({"task": 1}))
    msg = drive(env, q.receive())
    assert isinstance(msg, Message)
    assert msg.body == {"task": 1}
    assert msg.receive_count == 1
    drive(env, q.delete(msg))
    assert q.approximate_size() == 0
    assert drive(env, q.receive()) is None


def test_empty_receive_returns_none():
    env = Environment()
    q = make_queue(env)
    assert drive(env, q.receive()) is None
    assert q.stats.empty_receives == 1


def test_message_hidden_during_visibility_timeout():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=60.0)
    drive(env, q.send("t"))
    first = drive(env, q.receive())
    assert first is not None
    # Immediately after: the message is invisible.
    assert drive(env, q.receive()) is None
    assert q.visible_now() == 0


def test_message_reappears_after_visibility_timeout():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=10.0)
    drive(env, q.send("t"))
    msg1 = drive(env, q.receive())
    env.run(until=env.now + 11.0)
    msg2 = drive(env, q.receive())
    assert msg2 is not None
    assert msg2.message_id == msg1.message_id
    assert msg2.receive_count == 2
    assert q.stats.reappearances == 1
    assert q.stats.duplicate_deliveries == 1


def test_delete_with_stale_receipt_fails():
    """If a message reappeared and was re-received, the original receipt
    can no longer delete it — the new consumer owns it (SQS behaviour)."""
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0)
    drive(env, q.send("t"))
    old = drive(env, q.receive())
    env.run(until=env.now + 6.0)
    new = drive(env, q.receive())
    assert new.receipt != old.receipt
    with pytest.raises(StaleReceiptError):
        drive(env, q.delete(old))
    drive(env, q.delete(new))  # the live receipt works
    assert q.approximate_size() == 0


def test_delete_before_reappearance_prevents_redelivery():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0)
    drive(env, q.send("t"))
    msg = drive(env, q.receive())
    drive(env, q.delete(msg))
    env.run(until=env.now + 10.0)
    assert drive(env, q.receive()) is None
    assert q.stats.reappearances == 0


def test_propagation_delay_hides_fresh_messages():
    env = Environment()
    q = make_queue(env, propagation_delay_s=2.0)
    drive(env, q.send("t"))
    # Sent but not yet propagated.
    assert drive(env, q.receive()) is None
    env.run(until=env.now + 2.5)
    assert drive(env, q.receive()) is not None


def test_no_ordering_guarantee():
    """Receives return messages in effectively arbitrary order."""
    env = Environment()
    q = make_queue(env, rng=np.random.default_rng(42))
    for i in range(50):
        drive(env, q.send(i))
    received = []
    while True:
        msg = drive(env, q.receive())
        if msg is None:
            break
        received.append(msg.body)
        drive(env, q.delete(msg))
    assert sorted(received) == list(range(50))  # all delivered...
    assert received != list(range(50))  # ...but not FIFO


def test_miss_probability_causes_empty_receives_with_backlog():
    env = Environment()
    q = make_queue(env, rng=np.random.default_rng(1), miss_probability=0.5)
    for i in range(10):
        drive(env, q.send(i))
    outcomes = [drive(env, q.receive(visibility_timeout_s=0.001)) for _ in range(40)]
    assert any(m is None for m in outcomes)
    assert any(m is not None for m in outcomes)


def test_duplicate_probability_leaves_message_visible():
    env = Environment()
    q = make_queue(
        env, rng=np.random.default_rng(2), duplicate_probability=1.0
    )
    drive(env, q.send("dup"))
    m1 = drive(env, q.receive())
    m2 = drive(env, q.receive())  # still visible: duplicated delivery
    assert m1 is not None and m2 is not None
    assert m1.message_id == m2.message_id
    assert q.stats.duplicate_deliveries >= 1


def test_change_visibility_extends_window():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0)
    drive(env, q.send("t"))
    msg = drive(env, q.receive())
    drive(env, q.change_visibility(msg, 60.0))
    env.run(until=env.now + 10.0)  # original window long past
    assert drive(env, q.receive()) is None  # still hidden
    env.run(until=env.now + 60.0)
    assert drive(env, q.receive()) is not None  # extended window expired


def test_change_visibility_with_stale_receipt_fails():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=1.0)
    drive(env, q.send("t"))
    msg = drive(env, q.receive())
    env.run(until=env.now + 2.0)
    drive(env, q.receive())  # reappears, re-received by someone else
    with pytest.raises(StaleReceiptError):
        drive(env, q.change_visibility(msg, 60.0))


def test_per_receive_visibility_override():
    env = Environment()
    q = make_queue(env, visibility_timeout_s=1000.0)
    drive(env, q.send("t"))
    drive(env, q.receive(visibility_timeout_s=2.0))
    env.run(until=env.now + 3.0)
    assert drive(env, q.receive()) is not None


def test_request_metering():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    q = make_queue(env, meter=meter)
    drive(env, q.send("a"))
    msg = drive(env, q.receive())
    drive(env, q.delete(msg))
    assert meter.queue_requests == 3
    # ~10,000 requests cost $0.01 (Table 4 line item).
    assert AWS_PRICES.queue_cost(10_000) == pytest.approx(0.01)


def test_long_polling_waits_for_message():
    env = Environment()
    q = make_queue(env)

    def late_sender(env):
        yield env.timeout(3.0)
        yield env.process(q.send("eventually"))

    def long_poller(env):
        msg = yield env.process(q.receive(wait_time_s=10.0))
        return (env.now, msg.body)

    env.process(late_sender(env))
    when, body = env.run(until=env.process(long_poller(env)))
    assert body == "eventually"
    assert 3.0 <= when < 3.5
    assert q.stats.empty_receives == 0


def test_long_polling_times_out_empty():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    q = make_queue(env, meter=meter)

    def poller(env):
        msg = yield env.process(q.receive(wait_time_s=5.0))
        return (env.now, msg)

    when, msg = env.run(until=env.process(poller(env)))
    assert msg is None
    assert when >= 5.0
    assert meter.queue_requests == 1  # one metered call for the whole wait


def test_long_polling_cuts_request_count():
    """The cost argument for long polling: polling an idle-then-busy
    queue with short polls burns requests; one long poll does not."""
    def run_with(wait, poll_gap):
        env = Environment()
        meter = CostMeter(AWS_PRICES)
        q = make_queue(env, meter=meter)

        def sender(env):
            yield env.timeout(10.0)
            yield env.process(q.send("task"))

        def worker(env):
            while True:
                msg = yield env.process(q.receive(wait_time_s=wait))
                if msg is not None:
                    return
                yield env.timeout(poll_gap)

        env.process(sender(env))
        env.run(until=env.process(worker(env)))
        return meter.queue_requests

    short_poll_requests = run_with(wait=0.0, poll_gap=0.5)
    long_poll_requests = run_with(wait=20.0, poll_gap=0.5)
    assert long_poll_requests <= 3
    assert short_poll_requests > 5 * long_poll_requests


def test_negative_wait_rejected():
    env = Environment()
    q = make_queue(env)
    with pytest.raises(ValueError):
        drive(env, q.receive(wait_time_s=-1.0))


def test_send_batch_meters_one_request():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    q = make_queue(env, meter=meter)
    ids = drive(env, q.send_batch(list(range(10))))
    assert len(ids) == 10
    assert meter.queue_requests == 1
    assert q.stats.sent == 10
    received = set()
    while True:
        msg = drive(env, q.receive())
        if msg is None:
            break
        received.add(msg.body)
        drive(env, q.delete(msg))
    assert received == set(range(10))


def test_send_batch_size_limits():
    env = Environment()
    q = make_queue(env)
    with pytest.raises(ValueError):
        drive(env, q.send_batch([]))
    with pytest.raises(ValueError):
        drive(env, q.send_batch(list(range(11))))


def test_stats_counters():
    env = Environment()
    q = make_queue(env)
    drive(env, q.send("a"))
    drive(env, q.send("b"))
    m = drive(env, q.receive())
    drive(env, q.delete(m))
    drive(env, q.receive())
    assert q.stats.sent == 2
    assert q.stats.received == 2
    assert q.stats.deleted == 1
    assert q.approximate_size() == 1


def test_at_least_once_no_message_lost_under_crash_pattern():
    """Receive-without-delete (simulating crashed workers) never loses
    messages: everything is eventually deliverable again."""
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0, rng=np.random.default_rng(9))
    n = 20
    for i in range(n):
        drive(env, q.send(i))
    # Round 1: receive all, delete none (all workers "crash").
    got = 0
    while drive(env, q.receive()) is not None:
        got += 1
    assert got == n
    # After the visibility timeout, all reappear; now process properly.
    env.run(until=env.now + 6.0)
    completed = set()
    while True:
        msg = drive(env, q.receive())
        if msg is None:
            break
        completed.add(msg.body)
        drive(env, q.delete(msg))
    assert completed == set(range(n))


def test_delete_after_reappearance_without_rereceive_succeeds():
    """A receipt is only invalidated by a *newer receive*.  If the
    message reappeared but nobody picked it up, the original consumer's
    delete still lands (the reappearance accounting cleared the
    in-flight entry, so there is no competing owner)."""
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0)
    drive(env, q.send("t"))
    msg = drive(env, q.receive())
    env.run(until=env.now + 6.0)
    assert q.visible_now() == 1  # reappeared, accounted, unclaimed
    assert q.stats.reappearances == 1
    drive(env, q.delete(msg))  # no StaleReceiptError
    assert q.stats.stale_deletes == 0
    assert q.approximate_size() == 0
    assert drive(env, q.receive()) is None


def test_double_receive_rotates_receipts_monotonically():
    """Every receive mints a fresh receipt; only the newest deletes."""
    env = Environment()
    q = make_queue(env, visibility_timeout_s=2.0)
    drive(env, q.send("t"))
    receipts = []
    for _ in range(3):
        msg = drive(env, q.receive())
        assert msg is not None
        receipts.append(msg.receipt)
        env.run(until=env.now + 3.0)  # lapse the visibility window
    assert receipts == sorted(receipts)
    assert len(set(receipts)) == 3
    final = drive(env, q.receive())
    assert final.receive_count == 4
    # Each superseded receipt fails; the latest one wins.
    for stale in receipts:
        with pytest.raises(StaleReceiptError):
            drive(env, q.delete(replace(final, receipt=stale)))
    assert q.stats.stale_deletes == 3
    drive(env, q.delete(final))
    assert q.approximate_size() == 0


def test_sanitizer_leak_detection_on_abandoned_inflight_message():
    """The SanitizedEnvironment hook flags a receipt that went stale
    without the reappearance ever being accounted — a lost message."""
    from repro.lint.sanitizer import SanitizedEnvironment

    env = SanitizedEnvironment()
    q = make_queue(env, visibility_timeout_s=5.0)
    drive(env, q.send("a"))
    drive(env, q.send("b"))
    kept = drive(env, q.receive())
    abandoned = drive(env, q.receive())
    assert {kept.body, abandoned.body} == {"a", "b"}
    drive(env, q.delete(kept))
    env.run(until=env.now + 30.0)
    leaks = env.sanitizer_report().queue_leaks
    assert len(leaks) == 1
    assert f"message {abandoned.message_id} " in leaks[0]


def test_lost_delete_leaves_message_in_flight():
    """A dropped delete (delete_loss_probability=1) is metered and the
    message reappears after the visibility timeout — a benign duplicate,
    exactly how chaos windows model SQS losing deletes."""
    env = Environment()
    q = make_queue(env, visibility_timeout_s=5.0, delete_loss_probability=1.0)
    drive(env, q.send("a"))
    msg = drive(env, q.receive())
    drive(env, q.delete(msg))
    assert q.stats.lost_deletes == 1
    assert q.approximate_size() == 1  # still in flight, not deleted
    env.run(until=env.now + 10.0)
    again = drive(env, q.receive())
    assert again.body == "a"
    assert again.receive_count == 2


def test_delete_loss_defaults_off():
    """Two identically-seeded queues — one built before the feature
    existed (no kwarg), one with it explicitly off — delete through the
    same RNG states: the disabled guard consumes no draws, so seeded
    legacy runs stay byte-identical with the feature compiled in."""
    def play(**kwargs):
        env = Environment()
        q = make_queue(env, latency_sigma=0.35, **kwargs)
        drive(env, q.send("a"))
        msg = drive(env, q.receive())
        drive(env, q.delete(msg))
        assert q.stats.lost_deletes == 0
        assert q.approximate_size() == 0
        return env.now, q.rng.bit_generator.state

    assert play() == play(delete_loss_probability=0.0)
