"""Tests for the simulated blob store (S3 / Azure Blob)."""

import numpy as np
import pytest

from repro.cloud import AWS_PRICES, BlobNotFound, BlobStore, CostMeter
from repro.sim import Environment


def make_store(env, **kwargs):
    defaults = dict(
        rng=np.random.default_rng(7),
        request_latency_s=0.040,
        latency_sigma=0.0,  # deterministic latency for timing assertions
        bandwidth_mbps=50.0,
    )
    defaults.update(kwargs)
    return BlobStore(env, "bucket", **defaults)


def drive(env, gen):
    """Run a storage operation to completion, returning its value."""
    return env.run(until=env.process(gen))


def test_put_then_get_roundtrip():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("in/task1.fa", size=100_000, payload=b"ACGT"))
    blob = drive(env, store.get("in/task1.fa"))
    assert blob.key == "in/task1.fa"
    assert blob.size == 100_000
    assert blob.payload == b"ACGT"


def test_get_missing_raises_not_found():
    env = Environment()
    store = make_store(env)
    with pytest.raises(BlobNotFound):
        drive(env, store.get("missing"))
    assert store.stats.not_found == 1


def test_transfer_time_scales_with_size():
    env = Environment()
    store = make_store(env)
    t0 = env.now
    drive(env, store.put("small", size=1_000_000))
    small_time = env.now - t0
    t1 = env.now
    drive(env, store.put("big", size=100_000_000))
    big_time = env.now - t1
    # 100 MB at 50 MB/s = 2 s transfer vs 0.02 s: sizes dominate latency.
    assert big_time > small_time
    assert big_time == pytest.approx(0.040 + 100_000_000 / 50e6)


def test_request_latency_charged_even_for_empty_objects():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("empty", size=0))
    assert env.now == pytest.approx(0.040)


def test_put_overwrites_and_bumps_version():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("k", size=10))
    drive(env, store.put("k", size=20))
    blob = drive(env, store.get("k"))
    assert blob.version == 1
    assert blob.size == 20
    assert len(store) == 1


def test_delete_is_idempotent():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("k", size=10))
    drive(env, store.delete("k"))
    drive(env, store.delete("k"))  # no error
    with pytest.raises(BlobNotFound):
        drive(env, store.get("k"))


def test_head_and_list_keys():
    env = Environment()
    store = make_store(env)
    for name in ("in/a", "in/b", "out/c"):
        drive(env, store.put(name, size=1))
    assert drive(env, store.head("in/a")) is True
    assert drive(env, store.head("in/zzz")) is False
    assert drive(env, store.list_keys("in/")) == ["in/a", "in/b"]
    assert drive(env, store.list_keys()) == ["in/a", "in/b", "out/c"]


def test_negative_size_rejected():
    env = Environment()
    store = make_store(env)
    with pytest.raises(ValueError):
        drive(env, store.put("k", size=-1))


def test_metering_counts_requests_and_bytes():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    store = make_store(env, meter=meter)
    drive(env, store.put("k", size=1024**3))  # exactly 1 GB
    drive(env, store.get("k"))
    assert meter.storage_requests == 2
    assert meter.bytes_stored == 1024**3
    report = meter.report(storage_months=1.0)
    assert report.storage_cost == pytest.approx(
        0.14 + 2 * AWS_PRICES.storage_request_price
    )


def test_eventual_consistency_can_serve_stale_version():
    env = Environment()
    store = make_store(
        env,
        rng=np.random.default_rng(0),
        consistency_window_s=10.0,
    )
    drive(env, store.put("k", size=10, payload="v0"))
    env.run(until=env.now + 60.0)  # settle past the window
    drive(env, store.put("k", size=20, payload="v1"))
    # Read repeatedly within the window: some reads must be stale.
    versions = set()
    for _ in range(20):
        blob = drive(env, store.get("k"))
        versions.add(blob.payload)
    assert "v0" in versions  # stale read happened
    assert store.stats.stale_reads > 0
    # After the window closes, reads are always fresh.
    env.run(until=env.now + 20.0)
    assert drive(env, store.get("k")).payload == "v1"


def test_fresh_object_may_transiently_404_under_eventual_consistency():
    env = Environment()
    store = make_store(
        env, rng=np.random.default_rng(3), consistency_window_s=5.0
    )
    drive(env, store.put("new", size=10))
    outcomes = []
    for _ in range(20):
        try:
            drive(env, store.get("new"))
            outcomes.append("hit")
        except BlobNotFound:
            outcomes.append("miss")
    assert "miss" in outcomes  # at least one invisible read
    assert "hit" in outcomes


def test_retryable_errors_cost_extra_requests_and_time():
    env = Environment()
    meter = CostMeter(AWS_PRICES)
    store = make_store(
        env, rng=np.random.default_rng(11), error_rate=0.5, meter=meter
    )
    drive(env, store.put("k", size=1))
    # With a 50% error rate the expected request count for one successful
    # op is 2; over several ops we must see more requests than ops.
    for _ in range(10):
        drive(env, store.get("k"))
    assert meter.storage_requests > 11


def test_stats_track_operations():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("a", size=100))
    drive(env, store.get("a"))
    drive(env, store.delete("a"))
    assert store.stats.puts == 1
    assert store.stats.gets == 1
    assert store.stats.deletes == 1
    assert store.stats.bytes_uploaded == 100
    assert store.stats.bytes_downloaded == 100


def test_total_bytes_reflects_current_versions():
    env = Environment()
    store = make_store(env)
    drive(env, store.put("a", size=100))
    drive(env, store.put("b", size=50))
    drive(env, store.put("a", size=10))  # overwrite shrinks
    assert store.total_bytes() == 60
