"""Tests for cluster specs and the buy-vs-lease TCO model."""

import pytest

from repro.cloud.instance_types import MachineModel
from repro.cluster import CLUSTERS, ClusterSpec, ClusterTco, NodeSpec, get_cluster


class TestClusterSpecs:
    def test_cap3_baremetal_matches_paper(self):
        c = get_cluster("cap3-baremetal")
        assert c.n_nodes == 32
        assert c.node.machine.cores == 8
        assert c.node.machine.clock_ghz == 2.5
        assert c.node.machine.memory_gb == 16.0
        assert c.total_cores == 256

    def test_gtm_hadoop_uses_only_8_of_24_cores(self):
        c = get_cluster("gtm-hadoop")
        assert c.node.machine.cores == 24
        assert c.node.cores_for_scheduling == 8

    def test_dryad_clusters_run_windows(self):
        assert get_cluster("hpc-blast").node.machine.os == "windows"
        assert get_cluster("gtm-dryad").node.machine.os == "windows"
        assert get_cluster("cap3-baremetal-windows").node.machine.os == "windows"

    def test_internal_tco_cluster_shape(self):
        c = get_cluster("internal-tco")
        assert c.n_nodes == 32
        assert c.node.machine.cores == 24
        assert c.node.machine.memory_gb == 48.0
        assert c.interconnect_gbps == 40.0  # Infiniband

    def test_subset_restricts_nodes(self):
        c = get_cluster("cap3-baremetal").subset(8)
        assert c.n_nodes == 8
        assert c.total_cores == 64
        assert c.node is get_cluster("cap3-baremetal").node

    def test_subset_bounds_checked(self):
        with pytest.raises(ValueError):
            get_cluster("cap3-baremetal").subset(0)
        with pytest.raises(ValueError):
            get_cluster("cap3-baremetal").subset(33)

    def test_unknown_cluster_raises(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            get_cluster("nonexistent")

    def test_usable_cores_validation(self):
        machine = MachineModel(
            cores=4, clock_ghz=2.0, memory_gb=8, mem_bandwidth_gbps=6
        )
        with pytest.raises(ValueError):
            NodeSpec(name="bad", machine=machine, usable_cores=5)
        with pytest.raises(ValueError):
            NodeSpec(name="bad", machine=machine, usable_cores=0)

    def test_cluster_needs_nodes(self):
        node = NodeSpec(
            name="n",
            machine=MachineModel(
                cores=1, clock_ghz=1, memory_gb=1, mem_bandwidth_gbps=1
            ),
        )
        with pytest.raises(ValueError):
            ClusterSpec(name="empty", node=node, n_nodes=0)

    def test_all_catalog_entries_valid(self):
        for name, cluster in CLUSTERS.items():
            assert cluster.name == name
            assert cluster.total_cores >= 1


class TestClusterTco:
    def test_yearly_cost(self):
        tco = ClusterTco()
        # 500k/3 + 150k ~= 316.7k per year.
        assert tco.yearly_cost == pytest.approx(500_000 / 3 + 150_000)

    def test_cost_scales_inversely_with_utilization(self):
        tco = ClusterTco()
        c80 = tco.job_cost(wall_hours=1.0, utilization=0.8)
        c60 = tco.job_cost(wall_hours=1.0, utilization=0.6)
        assert c60 == pytest.approx(c80 * 0.8 / 0.6)

    def test_paper_section43_reference_costs(self):
        """The paper reports $8.25 / $9.43 / $11.01 at 80/70/60 % for the
        4096-file Cap3 job; with our yearly cost the implied job wall time
        is ~11 minutes, and the three costs must be self-consistent."""
        tco = ClusterTco()
        wall_hours = 8.25 / tco.cost_per_cluster_hour(0.8)
        assert tco.job_cost(wall_hours, 0.7) == pytest.approx(9.43, rel=0.01)
        assert tco.job_cost(wall_hours, 0.6) == pytest.approx(11.01, rel=0.01)

    def test_utilization_table_rows(self):
        tco = ClusterTco()
        rows = tco.utilization_table(wall_hours=1.0)
        assert [u for u, _ in rows] == [0.8, 0.7, 0.6]
        costs = [c for _, c in rows]
        assert costs == sorted(costs)  # lower utilization = higher cost

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTco(purchase_cost=-1)
        with pytest.raises(ValueError):
            ClusterTco(depreciation_years=0)
        tco = ClusterTco()
        with pytest.raises(ValueError):
            tco.cost_per_cluster_hour(0.0)
        with pytest.raises(ValueError):
            tco.cost_per_cluster_hour(1.5)
        with pytest.raises(ValueError):
            tco.job_cost(-1.0, 0.8)

    def test_zero_wall_hours_costs_nothing(self):
        assert ClusterTco().job_cost(0.0, 0.8) == 0.0
