"""Concurrency stress tests for the real (threaded) substrate pieces."""

import threading
import time

import numpy as np

from repro.classiccloud.local import LocalQueue


class TestLocalQueueUnderContention:
    def test_no_message_lost_or_double_won(self):
        """Many producers and consumers hammering one queue: every
        message is processed by exactly one winner."""
        q = LocalQueue(visibility_timeout_s=30.0)
        n_messages = 300
        winners: list[int] = []
        lock = threading.Lock()

        def producer(start):
            for i in range(start, start + 100):
                q.send(i)

        producers = [
            threading.Thread(target=producer, args=(base,))
            for base in (0, 100, 200)
        ]
        done = threading.Event()

        def consumer():
            while not done.is_set():
                msg = q.receive()
                if msg is None:
                    time.sleep(0.001)
                    continue
                if q.delete(msg):
                    with lock:
                        winners.append(msg.body)
                        if len(winners) == n_messages:
                            done.set()

        consumers = [threading.Thread(target=consumer) for _ in range(8)]
        for t in producers + consumers:
            t.start()
        for t in producers:
            t.join()
        done.wait(timeout=30.0)
        done.set()
        for t in consumers:
            t.join(timeout=5.0)
        assert sorted(winners) == list(range(n_messages))

    def test_reappearance_race_single_winner(self):
        """A message whose visibility expired mid-processing: of the two
        claimants, exactly one delete succeeds."""
        outcomes = []
        for trial in range(20):
            q = LocalQueue(visibility_timeout_s=0.02)
            q.send("contested")
            first = q.receive()
            time.sleep(0.03)  # visibility expires
            second = q.receive()
            assert second is not None
            results = [q.delete(first), q.delete(second)]
            outcomes.append(sum(results))
        # Exactly one winner in every trial.
        assert all(n == 1 for n in outcomes)

    def test_parallel_receive_no_duplicate_in_flight(self):
        """Concurrent receives never hand the same visible message to
        two consumers."""
        q = LocalQueue(visibility_timeout_s=60.0)
        for i in range(200):
            q.send(i)
        received: list[int] = []
        lock = threading.Lock()

        def worker():
            while True:
                msg = q.receive()
                if msg is None:
                    return
                with lock:
                    received.append(msg.body)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sorted(received) == list(range(200))


class TestThreadedAppsAreSafe:
    def test_blast_database_shared_across_threads(self):
        """The in-memory database is read-only: concurrent searches over
        one instance give identical results to serial searches."""
        from repro.apps.blast import blast_search
        from repro.workloads.protein import (
            generate_protein_database,
            generate_query_records,
        )

        db = generate_protein_database(20, seed=3)
        queries = generate_query_records(db, 12, seed=4)
        serial = blast_search(queries, db, num_threads=1)
        for _ in range(3):
            threaded = blast_search(queries, db, num_threads=8)
            assert threaded == serial

    def test_gtm_interpolation_threadsafe_reads(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.apps.gtm import gtm_interpolate, train_gtm

        rng = np.random.default_rng(0)
        model = train_gtm(
            rng.normal(size=(100, 6)), latent_per_dim=4, rbf_per_dim=2,
            iterations=3,
        )
        chunks = [rng.normal(size=(50, 6)) for _ in range(8)]
        expected = [gtm_interpolate(model, c) for c in chunks]
        with ThreadPoolExecutor(max_workers=8) as pool:
            actual = list(pool.map(lambda c: gtm_interpolate(model, c), chunks))
        for exp, act in zip(expected, actual):
            np.testing.assert_allclose(exp, act)
