"""Tests for post-run analysis helpers and trace export."""

import json

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.analysis import (
    completion_timeline,
    load_balance_index,
    phase_breakdown,
    worker_utilization,
)
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.task import RunResult, TaskRecord
from repro.workloads.genome import cap3_task_specs


@pytest.fixture(scope="module")
def ec2_run():
    app = get_application("cap3")
    tasks = cap3_task_specs(32, reads_per_file=200)
    backend = make_backend(
        "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=8
    )
    return backend.run(app, tasks)


def synthetic_result():
    records = [
        TaskRecord(
            task_id=f"t{i}",
            worker=f"w{i % 2}",
            started_at=float(i),
            finished_at=float(i) + 2.0,
            download_time=0.2,
            compute_time=1.6,
            upload_time=0.2,
        )
        for i in range(4)
    ]
    return RunResult(
        backend="test", app_name="x", n_tasks=4,
        makespan_seconds=6.0, records=records,
    )


class TestTimeline:
    def test_monotone_and_complete(self, ec2_run):
        timeline = completion_timeline(ec2_run)
        assert len(timeline) == ec2_run.n_tasks
        times = [t for t, _ in timeline]
        counts = [c for _, c in timeline]
        assert times == sorted(times)
        assert counts == list(range(1, ec2_run.n_tasks + 1))
        assert times[-1] <= ec2_run.makespan_seconds + ec2_run.extras.get(
            "preload_seconds", 0.0
        ) + 1e6  # sanity only: finite

    def test_synthetic(self):
        timeline = completion_timeline(synthetic_result())
        assert timeline == [(2.0, 1), (3.0, 2), (4.0, 3), (5.0, 4)]


class TestUtilization:
    def test_bounded_and_high_for_balanced_run(self, ec2_run):
        utilization = worker_utilization(ec2_run)
        assert len(utilization) == 16  # 2 HCXL x 8 workers
        for value in utilization.values():
            assert 0.0 < value <= 1.0
        # Homogeneous tasks, dynamic queue: everyone stays busy.
        assert min(utilization.values()) > 0.5

    def test_synthetic(self):
        utilization = worker_utilization(synthetic_result())
        assert utilization == {"w0": pytest.approx(4 / 6), "w1": pytest.approx(4 / 6)}

    def test_zero_makespan_tolerated(self):
        empty = RunResult(
            backend="x", app_name="a", n_tasks=0, makespan_seconds=0.0
        )
        assert worker_utilization(empty) == {}

    def test_zero_makespan_with_busy_records(self):
        result = RunResult(
            backend="x", app_name="a", n_tasks=2, makespan_seconds=0.0,
            records=[
                TaskRecord(
                    task_id="t0", worker="w0", started_at=0.0,
                    finished_at=1.0,
                ),
                TaskRecord(
                    task_id="t1", worker="w1", started_at=0.0,
                    finished_at=0.0,
                ),
            ],
        )
        assert worker_utilization(result) == {"w0": 1.0, "w1": 0.0}

    def test_idle_worker_reports_zero(self):
        result = RunResult(
            backend="x", app_name="a", n_tasks=1, makespan_seconds=4.0,
            records=[
                TaskRecord(
                    task_id="t0", worker="w0", started_at=0.0,
                    finished_at=0.0,
                ),
                TaskRecord(
                    task_id="t1", worker="w1", started_at=0.0,
                    finished_at=2.0,
                ),
            ],
        )
        assert worker_utilization(result) == {"w0": 0.0, "w1": 0.5}


class TestLoadBalance:
    def test_dynamic_queue_near_one(self, ec2_run):
        assert 1.0 <= load_balance_index(ec2_run) < 1.3

    def test_static_partitions_worse_on_skew(self):
        from dataclasses import replace

        from repro.cluster import get_cluster

        app = get_application("cap3")
        tasks = cap3_task_specs(32, reads_per_file=300)
        tasks = [
            replace(t, work_units=t.work_units * (5.0 if i >= 24 else 1.0))
            for i, t in enumerate(tasks)
        ]
        dryad = make_backend(
            "dryadlinq",
            cluster=get_cluster("cap3-baremetal-windows").subset(4),
        ).run(app, tasks)
        hadoop = make_backend(
            "hadoop", cluster=get_cluster("cap3-baremetal").subset(4)
        ).run(app, tasks)
        assert load_balance_index(dryad) > load_balance_index(hadoop)

    def test_empty_records_vacuously_balanced(self):
        empty = RunResult(
            backend="x", app_name="a", n_tasks=0, makespan_seconds=1.0
        )
        assert load_balance_index(empty) == 1.0

    def test_zero_busy_time_vacuously_balanced(self):
        result = RunResult(
            backend="x", app_name="a", n_tasks=1, makespan_seconds=1.0,
            records=[
                TaskRecord(
                    task_id="t0", worker="w0", started_at=0.5,
                    finished_at=0.5,
                ),
            ],
        )
        assert load_balance_index(result) == 1.0


class TestPhaseBreakdown:
    def test_fractions_sum_to_one(self, ec2_run):
        breakdown = phase_breakdown(ec2_run)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        # Cap3 is compute-dominated with coarse tasks.
        assert breakdown["compute"] > 0.9

    def test_no_time_rejected(self):
        empty = RunResult(
            backend="x", app_name="a", n_tasks=0, makespan_seconds=1.0
        )
        with pytest.raises(ValueError):
            phase_breakdown(empty)


class TestGantt:
    def test_renders_all_workers(self, ec2_run):
        from repro.core.analysis import gantt_text

        text = gantt_text(ec2_run, width=60)
        lines = text.split("\n")
        assert len(lines) == 17  # header + 16 workers
        assert all("|" in line for line in lines)
        # Busy marks present; width respected.
        assert "#" in text
        body = lines[1].split("|")[1]
        assert len(body) == 60

    def test_duplicates_marked(self):
        from repro.core.analysis import gantt_text
        from repro.core.task import RunResult, TaskRecord

        result = RunResult(
            backend="x", app_name="a", n_tasks=1, makespan_seconds=10.0,
            records=[
                TaskRecord(
                    task_id="t", worker="w0", started_at=0.0,
                    finished_at=5.0, won=True,
                ),
                TaskRecord(
                    task_id="t", worker="w1", started_at=0.0,
                    finished_at=5.0, won=False, was_duplicate=True,
                ),
            ],
        )
        text = gantt_text(result, width=20)
        w0_line = next(l for l in text.split("\n") if l.startswith("w0"))
        w1_line = next(l for l in text.split("\n") if l.startswith("w1"))
        assert "#" in w0_line and "x" not in w0_line
        assert "x" in w1_line and "#" not in w1_line

    def test_validation(self):
        from repro.core.analysis import gantt_text
        from repro.core.task import RunResult

        empty = RunResult(
            backend="x", app_name="a", n_tasks=0, makespan_seconds=1.0
        )
        with pytest.raises(ValueError):
            gantt_text(empty)
        with pytest.raises(ValueError):
            gantt_text(empty, width=5)


class TestTraceExport:
    def test_json_roundtrip(self, ec2_run, tmp_path):
        path = tmp_path / "trace.json"
        text = ec2_run.to_json(path)
        loaded = json.loads(text)
        assert loaded == json.loads(path.read_text())
        assert loaded["backend"] == "classiccloud-aws"
        assert loaded["n_tasks"] == 32
        assert len(loaded["completed"]) == 32
        assert loaded["billing"]["total_cost"] > 0
        assert len(loaded["records"]) >= 32
        record = loaded["records"][0]
        assert set(record) == {
            "task_id", "worker", "started_at", "finished_at",
            "download_time", "compute_time", "upload_time", "attempt",
            "was_duplicate", "speculative", "won",
        }

    def test_dict_without_billing(self):
        result = synthetic_result()
        data = result.to_dict()
        assert data["billing"] is None
        assert data["n_tasks"] == 4
