"""Tests for the unified API, backend registry and experiment drivers."""

import pytest

from repro.classiccloud.framework import ClassicCloudConfig
from repro.cloud.failures import FaultPlan
from repro.core.api import evaluate, run
from repro.core.application import Application, get_application
from repro.core.backends import ClassicCloudBackend, make_backend
from repro.core.experiment import instance_type_study, scalability_study
from repro.workloads.genome import cap3_task_specs


@pytest.fixture
def cap3():
    return get_application("cap3")


def quiet_cc(**kwargs):
    """A small, fault-free EC2 backend for fast tests."""
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        seed=1,
    )
    defaults.update(kwargs)
    return ClassicCloudBackend(ClassicCloudConfig(**defaults))


class TestApplication:
    def test_known_apps(self):
        for name in ("cap3", "blast", "gtm"):
            app = get_application(name)
            assert app.name == name
            assert app.perf_model.app_name == name

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_application("hmmer")

    def test_blast_has_preload(self):
        blast = get_application("blast")
        assert blast.preload_bytes > 2 * 1024**3
        assert get_application("cap3").preload_bytes == 0

    def test_with_threads(self):
        blast = get_application("blast").with_threads(4)
        assert blast.threads_per_worker == 4

    def test_make_executable_requires_factory(self, cap3):
        with pytest.raises(ValueError, match="no local executable"):
            cap3.make_executable()

    def test_executable_factory_used(self):
        from repro.apps.executables import Cap3Executable

        app = get_application("cap3", executable_factory=Cap3Executable)
        assert isinstance(app.make_executable(), Cap3Executable)

    def test_validation(self):
        from repro.apps.perfmodels import APP_PERF_MODELS

        with pytest.raises(ValueError):
            Application(
                name="x", perf_model=APP_PERF_MODELS["cap3"], preload_bytes=-1
            )
        with pytest.raises(ValueError):
            Application(
                name="x",
                perf_model=APP_PERF_MODELS["cap3"],
                threads_per_worker=0,
            )


class TestMakeBackend:
    def test_ec2_defaults_match_paper(self):
        backend = make_backend("ec2")
        assert backend.config.instance_type == "HCXL"
        assert backend.config.n_instances == 16
        assert backend.total_cores == 128

    def test_azure_defaults_match_paper(self):
        backend = make_backend("azure")
        assert backend.config.instance_type == "Small"
        assert backend.config.n_instances == 128
        assert backend.total_cores == 128

    def test_hadoop_cluster_by_name(self):
        backend = make_backend("hadoop", cluster="idataplex")
        assert backend.config.cluster.name == "idataplex"

    def test_dryadlinq_default_cluster(self):
        backend = make_backend("dryadlinq")
        assert backend.config.cluster.node.machine.os == "windows"

    def test_local(self):
        backend = make_backend("local", n_workers=2)
        assert backend.total_cores == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_backend("slurm")


class TestRunApi:
    def test_run_with_backend_instance(self, cap3):
        tasks = cap3_task_specs(16, reads_per_file=200)
        result = run(cap3, tasks, backend=quiet_cc())
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_run_with_backend_name(self, cap3):
        tasks = cap3_task_specs(16, reads_per_file=200)
        result = run(
            cap3,
            tasks,
            backend="ec2",
            n_instances=2,
            fault_plan=FaultPlan.none(),
            consistency_window_s=0.0,
        )
        assert result.n_tasks == 16

    def test_kwargs_with_instance_rejected(self, cap3):
        with pytest.raises(TypeError):
            run(cap3, cap3_task_specs(2), backend=quiet_cc(), n_instances=3)

    def test_evaluate_produces_paper_metrics(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        metrics = evaluate(cap3, tasks, backend=quiet_cc())
        assert set(metrics) == {
            "makespan_seconds",
            "t1_seconds",
            "cores",
            "parallel_efficiency",
            "avg_time_per_file_per_core",
        }
        assert 0.0 < metrics["parallel_efficiency"] <= 1.0
        assert metrics["cores"] == 16.0


class TestExperimentDrivers:
    def test_instance_type_study_rows(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        backends = [
            quiet_cc(instance_type="HCXL", n_instances=2, workers_per_instance=8),
            quiet_cc(instance_type="L", n_instances=8, workers_per_instance=2),
        ]
        rows = instance_type_study(cap3, backends, tasks)
        assert len(rows) == 2
        assert rows[0].label == "HCXL - 2 x 8"
        assert rows[1].label == "L - 8 x 2"
        for row in rows:
            assert row.compute_time_s > 0
            assert row.compute_cost > 0
            assert row.amortized_cost < row.total_cost

    def test_hcxl_most_economical_for_cap3(self, cap3):
        """Figure 3's punchline: HCXL wins on cost."""
        tasks = cap3_task_specs(48, reads_per_file=200)
        backends = [
            quiet_cc(instance_type="L", n_instances=8, workers_per_instance=2),
            quiet_cc(instance_type="XL", n_instances=4, workers_per_instance=4),
            quiet_cc(instance_type="HCXL", n_instances=2, workers_per_instance=8),
            quiet_cc(instance_type="HM4XL", n_instances=2, workers_per_instance=8),
        ]
        rows = instance_type_study(cap3, backends, tasks)
        by_label = {r.label.split(" ")[0]: r for r in rows}
        cheapest = min(rows, key=lambda r: r.compute_cost)
        assert cheapest.label.startswith("HCXL")
        # HM4XL fastest (Figure 4) but most expensive (Figure 3).
        fastest = min(rows, key=lambda r: r.compute_time_s)
        assert fastest.label.startswith("HM4XL")
        assert by_label["HM4XL"].compute_cost == max(
            r.compute_cost for r in rows
        )

    def test_scalability_study_points(self, cap3):
        def factory(cores):
            return quiet_cc(n_instances=cores // 8)

        def tasks_for(cores):
            return cap3_task_specs(cores * 2, reads_per_file=200)

        points = scalability_study(cap3, factory, [16, 32], tasks_for)
        assert [p.cores for p in points] == [16, 32]
        for point in points:
            assert 0.5 < point.efficiency <= 1.0
            assert point.per_file_per_core_s > 0
