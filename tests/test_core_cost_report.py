"""Tests for the cost comparison and report rendering."""

import pytest

from repro.cloud.billing import BillingReport
from repro.cluster.tco import ClusterTco
from repro.core.cost import cloud_vs_cluster
from repro.core.report import (
    FEATURE_MATRIX,
    feature_matrix_rows,
    format_series,
    format_table,
)


def make_report(compute, queue=0.01, storage=0.14, transfer=0.10):
    return BillingReport(
        compute_hour_units=16,
        compute_cost=compute,
        amortized_compute_cost=compute * 0.8,
        queue_cost=queue,
        storage_cost=storage,
        transfer_cost=transfer,
        queue_requests=10_000,
        storage_requests=8_000,
    )


class TestCostComparison:
    def test_table4_shape(self):
        comparison = cloud_vs_cluster(
            aws_report=make_report(10.88),
            azure_report=make_report(15.36, storage=0.15, transfer=0.25),
            cluster_wall_hours=0.22,
        )
        rows = comparison.table4_rows()
        assert [r[0] for r in rows] == [
            "Compute Cost",
            "Queue messages",
            "Storage",
            "Data transfer in/out",
            "Total Cost",
        ]
        assert rows[0][1] == "10.88 $"
        assert rows[-1][1] == "11.13 $"
        assert rows[-1][2] == "15.77 $"

    def test_cluster_rows_ordering(self):
        comparison = cloud_vs_cluster(
            aws_report=make_report(10.88),
            azure_report=make_report(15.36),
            cluster_wall_hours=0.22,
        )
        rows = comparison.cluster_rows()
        assert [r[0] for r in rows] == [
            "80% utilization",
            "70% utilization",
            "60% utilization",
        ]
        costs = [float(r[1].split()[0]) for r in rows]
        assert costs == sorted(costs)

    def test_custom_tco_and_utilizations(self):
        comparison = cloud_vs_cluster(
            aws_report=make_report(1.0),
            azure_report=make_report(1.0),
            cluster_wall_hours=1.0,
            tco=ClusterTco(purchase_cost=0.0, yearly_maintenance=8760.0),
            utilizations=(1.0, 0.5),
        )
        costs = dict(comparison.cluster_costs)
        assert costs[1.0] == pytest.approx(1.0)
        assert costs[0.5] == pytest.approx(2.0)


class TestFeatureMatrix:
    def test_covers_table3_features(self):
        assert set(FEATURE_MATRIX) == {
            "Programming patterns",
            "Fault tolerance",
            "Data storage and communication",
            "Environments",
            "Scheduling and load balancing",
        }

    def test_rows_have_all_columns(self):
        for row in feature_matrix_rows():
            assert len(row) == 4
            assert all(isinstance(cell, str) and cell for cell in row)

    def test_key_claims_present(self):
        rows = {r[0]: r for r in feature_matrix_rows()}
        assert "time out" in rows["Fault tolerance"][1]
        assert "HDFS" in rows["Data storage and communication"][2]
        assert "static task" in rows["Scheduling and load balancing"][3].lower()


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        from repro.core.report import ascii_bars

        text = ascii_bars(
            [("HCXL", 640.0), ("HM4XL", 493.0)], width=20, title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert lines[1].count("#") == 20  # the peak fills the width
        assert 0 < lines[2].count("#") < 20
        assert "640" in lines[1]

    def test_zero_values_draw_empty_bars(self):
        from repro.core.report import ascii_bars

        text = ascii_bars([("a", 0.0), ("b", 0.0)])
        assert "#" not in text

    def test_validation(self):
        from repro.core.report import ascii_bars

        with pytest.raises(ValueError):
            ascii_bars([])
        with pytest.raises(ValueError):
            ascii_bars([("a", 1.0)], width=0)
        with pytest.raises(ValueError):
            ascii_bars([("a", -1.0)])


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data lines equal width.
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series_merges_x_values(self):
        text = format_series(
            "cores",
            {
                "EC2": {64: 0.9, 128: 0.85},
                "Hadoop": {64: 0.95},
            },
        )
        lines = text.split("\n")
        assert "EC2" in lines[0] and "Hadoop" in lines[0]
        assert any("0.850" in l and "-" in l for l in lines)  # missing cell
