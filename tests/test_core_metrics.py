"""Tests for Equations 1 and 2 and the task model."""

import pytest

from repro.core.metrics import (
    average_time_per_file_per_core,
    parallel_efficiency,
    speedup,
)
from repro.core.task import RunResult, TaskRecord, TaskSpec


class TestEquation1:
    def test_perfect_scaling_is_one(self):
        # 100s sequential, 10 cores, 10s parallel.
        assert parallel_efficiency(100.0, 10.0, 10) == pytest.approx(1.0)

    def test_half_efficiency(self):
        assert parallel_efficiency(100.0, 20.0, 10) == pytest.approx(0.5)

    def test_single_core_equals_speedup_one(self):
        assert parallel_efficiency(50.0, 50.0, 1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency(0.0, 1.0, 2)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0, 2)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 1.0, 0)


class TestEquation2:
    def test_basic(self):
        # 100 files on 16 cores in 600s -> 96 core-seconds per file.
        assert average_time_per_file_per_core(600.0, 16, 100) == pytest.approx(
            96.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            average_time_per_file_per_core(-1.0, 1, 1)
        with pytest.raises(ValueError):
            average_time_per_file_per_core(1.0, 0, 1)
        with pytest.raises(ValueError):
            average_time_per_file_per_core(1.0, 1, 0)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestTaskSpec:
    def test_valid(self):
        spec = TaskSpec(
            task_id="t",
            input_key="in",
            output_key="out",
            input_size=10,
            output_size=5,
            work_units=1.0,
        )
        assert spec.task_id == "t"

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("", "i", "o", 1, 1, 1.0)
        with pytest.raises(ValueError):
            TaskSpec("t", "i", "o", -1, 1, 1.0)
        with pytest.raises(ValueError):
            TaskSpec("t", "i", "o", 1, 1, -1.0)


class TestRunResult:
    def make_record(self, task_id, won=True, duplicate=False):
        return TaskRecord(
            task_id=task_id,
            worker="w",
            started_at=0.0,
            finished_at=1.0,
            compute_time=0.5,
            was_duplicate=duplicate,
            won=won,
        )

    def test_completed_prefers_explicit_set(self):
        result = RunResult(
            backend="x",
            app_name="a",
            n_tasks=2,
            makespan_seconds=1.0,
            records=[self.make_record("t1")],
            completed={"t1", "t2"},
        )
        assert result.completed_task_ids == {"t1", "t2"}

    def test_completed_falls_back_to_winners(self):
        result = RunResult(
            backend="x",
            app_name="a",
            n_tasks=2,
            makespan_seconds=1.0,
            records=[
                self.make_record("t1"),
                self.make_record("t2", won=False, duplicate=True),
            ],
        )
        assert result.completed_task_ids == {"t1"}
        assert result.duplicate_executions == 1

    def test_total_compute_counts_losers(self):
        result = RunResult(
            backend="x",
            app_name="a",
            n_tasks=1,
            makespan_seconds=1.0,
            records=[
                self.make_record("t1"),
                self.make_record("t1", won=False),
            ],
        )
        assert result.total_compute_seconds() == pytest.approx(1.0)

    def test_record_elapsed(self):
        record = self.make_record("t")
        assert record.elapsed == pytest.approx(1.0)
