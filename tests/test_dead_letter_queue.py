"""Tests for the dead-letter redrive policy (poison-task handling).

The paper argues re-execution is harmless because tasks are idempotent —
true for *worker* failures, but a task whose input crashes every worker
would redeliver forever.  The SQS-style redrive policy bounds that.
"""

import numpy as np
import pytest

from repro.cloud.queue import MessageQueue
from repro.sim import Environment


def make_queue(env, dlq=None, max_receives=None, **kwargs):
    defaults = dict(
        rng=np.random.default_rng(3),
        visibility_timeout_s=5.0,
        latency_sigma=0.0,
        propagation_delay_s=0.0,
        miss_probability=0.0,
    )
    defaults.update(kwargs)
    return MessageQueue(
        env,
        "tasks",
        max_receive_count=max_receives,
        dead_letter_queue=dlq,
        **defaults,
    )


def drive(env, gen):
    return env.run(until=env.process(gen))


def test_poison_message_moves_to_dlq():
    env = Environment()
    dlq = make_queue(env)
    q = make_queue(env, dlq=dlq, max_receives=3)
    drive(env, q.send("poison"))
    # Receive without deleting (every worker "crashes") three times.
    for expected_count in (1, 2, 3):
        env.run(until=env.now + 6.0)  # let any timeout expire
        msg = drive(env, q.receive())
        assert msg is not None
        assert msg.receive_count == expected_count
    env.run(until=env.now + 6.0)
    # Fourth receive: gone from the main queue...
    assert drive(env, q.receive()) is None
    assert q.approximate_size() == 0
    assert q.stats.dead_lettered == 1
    # ...and waiting in the DLQ with its receive history.
    dead = drive(env, dlq.receive())
    assert dead is not None
    assert dead.body == "poison"
    assert dead.receive_count == 4  # 3 in source + this DLQ receive


def test_healthy_messages_unaffected_by_redrive():
    env = Environment()
    dlq = make_queue(env)
    q = make_queue(env, dlq=dlq, max_receives=2)
    for i in range(5):
        drive(env, q.send(i))
    done = set()
    while True:
        msg = drive(env, q.receive())
        if msg is None:
            break
        done.add(msg.body)
        drive(env, q.delete(msg))
    assert done == set(range(5))
    assert q.stats.dead_lettered == 0
    assert dlq.approximate_size() == 0


def test_dead_letter_without_dlq_just_drops():
    """max_receive_count with no DLQ: the poison message is discarded
    (still bounded — never redelivers forever)."""
    env = Environment()
    q = make_queue(env, max_receives=1)
    drive(env, q.send("poison"))
    assert drive(env, q.receive()) is not None
    env.run(until=env.now + 6.0)
    assert drive(env, q.receive()) is None
    assert q.stats.dead_lettered == 1
    assert q.approximate_size() == 0


def test_redrive_counts_in_stats_not_deleted():
    env = Environment()
    q = make_queue(env, max_receives=1)
    drive(env, q.send("p"))
    drive(env, q.receive())
    env.run(until=env.now + 6.0)
    q.visible_now()  # force promotion
    assert q.stats.dead_lettered == 1
    assert q.stats.deleted == 0


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        make_queue(env, max_receives=0)


def test_mixed_poison_and_healthy_workload():
    """A workload with one poison task completes all healthy work and
    quarantines the poison message."""
    env = Environment()
    dlq = make_queue(env)
    q = make_queue(env, dlq=dlq, max_receives=1, visibility_timeout_s=2.0)
    for i in range(8):
        drive(env, q.send(("task", i)))
    drive(env, q.send(("poison", 99)))
    completed = set()

    def worker(env):
        while len(completed) < 8:
            msg = yield env.process(q.receive())
            if msg is None:
                yield env.timeout(0.5)
                continue
            kind, value = msg.body
            if kind == "poison":
                continue  # crash: never delete
            yield env.timeout(0.1)  # do the work
            yield env.process(q.delete(msg))
            completed.add(value)

    workers = [env.process(worker(env)) for _ in range(3)]
    env.run(until=env.all_of(workers))
    assert completed == set(range(8))
    env.run(until=env.now + 5.0)
    assert q.visible_now() == 0
    assert dlq.approximate_size() == 1
