"""Tests for the deployment-effort models (paper §2.4)."""

import pytest

from repro.cloud.deployment import (
    AZURE_DEPLOYMENT,
    EC2_DEPLOYMENT,
    DeploymentModel,
    DeploymentStep,
    preparation_cost,
)
from repro.cloud.instance_types import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES


class TestDeploymentModels:
    def test_azure_needs_less_operator_attention(self):
        """The paper: 'The deployment process was easier with Azure.'"""
        for n in (1, 16, 128):
            assert AZURE_DEPLOYMENT.manual_seconds(n) < EC2_DEPLOYMENT.manual_seconds(n)

    def test_ec2_manual_effort_scales_with_fleet(self):
        one = EC2_DEPLOYMENT.manual_seconds(1)
        many = EC2_DEPLOYMENT.manual_seconds(16)
        assert many > one  # per-instance ssh step

    def test_azure_manual_effort_is_flat(self):
        assert AZURE_DEPLOYMENT.manual_seconds(1) == AZURE_DEPLOYMENT.manual_seconds(128)

    def test_azure_has_fewer_manual_steps(self):
        assert (
            AZURE_DEPLOYMENT.manual_step_count
            < EC2_DEPLOYMENT.manual_step_count + 2
        )

    def test_total_time_includes_automated_steps(self):
        assert EC2_DEPLOYMENT.total_seconds(4) > EC2_DEPLOYMENT.manual_seconds(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentStep("x", -1.0, manual=True)
        with pytest.raises(ValueError):
            EC2_DEPLOYMENT.total_seconds(0)
        with pytest.raises(ValueError):
            EC2_DEPLOYMENT.manual_seconds(0)


class TestPreparationCost:
    def test_ec2_preparation_bills_an_hour(self):
        cost = preparation_cost(
            EC2_DEPLOYMENT, EC2_INSTANCE_TYPES["HCXL"], n_instances=16
        )
        # Boot + worker start < 1h -> one started hour per instance.
        assert cost == pytest.approx(16 * 0.68)

    def test_azure_preparation_cost(self):
        cost = preparation_cost(
            AZURE_DEPLOYMENT, AZURE_INSTANCE_TYPES["Small"], n_instances=128
        )
        assert cost == pytest.approx(128 * 0.12)

    def test_provider_mismatch_rejected(self):
        with pytest.raises(ValueError):
            preparation_cost(
                AZURE_DEPLOYMENT, EC2_INSTANCE_TYPES["L"], n_instances=1
            )

    def test_zero_clock_steps_cost_nothing(self):
        model = DeploymentModel(
            provider="aws",
            steps=(DeploymentStep("paperwork", 3600.0, manual=True),),
        )
        assert preparation_cost(
            model, EC2_INSTANCE_TYPES["L"], n_instances=4
        ) == 0.0
