"""Docs drift guard: the public API must be documented.

Every name exported through ``__all__`` by ``repro`` or any of its
subpackages has to appear (as a whole word) in ``docs/API.md``.  Adding
a public symbol without documenting it fails this test; so does
documenting it under a typo'd name.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def public_packages():
    names = ["repro"] + sorted(
        m.name for m in pkgutil.iter_modules(repro.__path__, "repro.")
    )
    out = []
    for name in names:
        mod = importlib.import_module(name)
        exported = getattr(mod, "__all__", None)
        if exported:
            out.append((name, tuple(exported)))
    return out


PACKAGES = public_packages()


def test_api_md_exists():
    assert API_MD.is_file()


@pytest.mark.parametrize(
    ("package", "exported"),
    PACKAGES,
    ids=[name for name, _ in PACKAGES],
)
def test_every_public_name_is_documented(package, exported):
    text = API_MD.read_text(encoding="utf-8")
    missing = [
        name
        for name in exported
        if not re.search(rf"\b{re.escape(name)}\b", text)
    ]
    assert not missing, (
        f"{package}.__all__ names missing from docs/API.md: {missing}"
    )


def test_exports_resolve():
    # __all__ must not advertise names that don't exist (the guard above
    # would otherwise pass on documentation of a phantom symbol).
    for package, exported in PACKAGES:
        mod = importlib.import_module(package)
        for name in exported:
            assert hasattr(mod, name), f"{package}.{name} does not resolve"
