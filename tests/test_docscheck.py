"""The documentation checker: links, executable fences, coverage."""

from pathlib import Path

from repro.lint.docscheck import (
    check_docs,
    cli_subcommands,
    default_doc_paths,
    lint_rule_codes,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(path, text):
    path.write_text(text, encoding="utf-8")
    return path


class TestLinks:
    def test_resolving_relative_link_passes(self, tmp_path):
        write(tmp_path / "other.md", "# Other\n")
        doc = write(tmp_path / "doc.md", "See [other](other.md).\n")
        result = check_docs(paths=[doc], execute=False)
        assert result.ok
        assert result.links_checked == 1

    def test_broken_relative_link_flagged(self, tmp_path):
        doc = write(tmp_path / "doc.md", "See [gone](missing.md).\n")
        result = check_docs(paths=[doc], execute=False)
        (problem,) = result.problems
        assert problem.kind == "link"
        assert "missing.md" in problem.message
        assert problem.line == 1

    def test_anchor_must_match_a_heading(self, tmp_path):
        write(tmp_path / "other.md", "# Big Title\n\n## The spot market\n")
        doc = write(
            tmp_path / "doc.md",
            "[ok](other.md#the-spot-market)\n[bad](other.md#no-such)\n",
        )
        result = check_docs(paths=[doc], execute=False)
        (problem,) = result.problems
        assert problem.kind == "anchor"
        assert "#no-such" in problem.message

    def test_http_links_are_skipped(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "[ext](https://example.invalid/x) [m](mailto:a@b.c)\n",
        )
        assert check_docs(paths=[doc], execute=False).ok

    def test_links_inside_fences_are_ignored(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "```\n[not a link](missing.md)\n```\n",
        )
        assert check_docs(paths=[doc], execute=False).ok


class TestFences:
    def test_passing_fence_runs(self, tmp_path):
        doc = write(tmp_path / "doc.md", "```python\nx = 1 + 1\n```\n")
        result = check_docs(paths=[doc])
        assert result.ok
        assert result.fences_run == 1

    def test_failing_fence_reports_its_line(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "intro\n\n```python\nraise ValueError('doc rot')\n```\n",
        )
        result = check_docs(paths=[doc])
        (problem,) = result.problems
        assert problem.kind == "code"
        assert problem.line == 3
        assert "doc rot" in problem.message

    def test_no_run_marker_skips_a_fence(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "<!-- no-run -->\n```python\nundefined_name\n```\n",
        )
        result = check_docs(paths=[doc])
        assert result.ok
        assert result.fences_skipped == 1
        assert result.fences_run == 0

    def test_fences_in_one_file_share_a_namespace(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "```python\nvalue = 21\n```\ntext\n```python\n"
            "assert value * 2 == 42\n```\n",
        )
        result = check_docs(paths=[doc])
        assert result.ok
        assert result.fences_run == 2

    def test_fences_run_in_a_throwaway_cwd(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "```python\nwith open('artifact.txt', 'w') as fh:\n"
            "    fh.write('x')\n```\n",
        )
        result = check_docs(paths=[doc])
        assert result.ok
        assert not (tmp_path / "artifact.txt").exists()
        assert not Path("artifact.txt").exists()

    def test_non_python_fences_are_not_executed(self, tmp_path):
        doc = write(tmp_path / "doc.md", "```bash\nexit 1\n```\n")
        result = check_docs(paths=[doc])
        assert result.ok
        assert result.fences_run == 0


def full_coverage_text():
    """A corpus that mentions every subcommand and rule code."""
    lines = [f"Run `repro {command}` for things." for command in cli_subcommands()]
    lines.extend(f"Rule {code} exists." for code in lint_rule_codes())
    return "\n".join(lines) + "\n"


class TestCoverage:
    def test_registries_track_the_live_surface(self):
        commands = cli_subcommands()
        assert "serve" in commands
        assert "docs" in commands
        assert "sweep" in commands
        codes = lint_rule_codes()
        assert "RPR001" in codes
        assert "RPR202" in codes

    def test_explicit_paths_skip_coverage(self, tmp_path):
        # A partial file list cannot satisfy a whole-tree requirement.
        doc = write(tmp_path / "doc.md", "nothing documented here\n")
        result = check_docs(paths=[doc], execute=False)
        assert result.ok
        assert result.coverage_checked == 0

    def test_full_corpus_passes(self, tmp_path):
        doc = write(tmp_path / "doc.md", full_coverage_text())
        result = check_docs(paths=[doc], execute=False, coverage=True)
        assert result.ok, result.render()
        expected = len(cli_subcommands()) + len(lint_rule_codes())
        assert result.coverage_checked == expected

    def test_missing_subcommand_flagged(self, tmp_path):
        text = full_coverage_text().replace("`repro serve`", "`repro-serve`")
        doc = write(tmp_path / "doc.md", text)
        result = check_docs(paths=[doc], execute=False, coverage=True)
        (problem,) = result.problems
        assert problem.kind == "coverage"
        assert "repro serve" in problem.message

    def test_missing_rule_code_flagged(self, tmp_path):
        text = full_coverage_text().replace("Rule RPR202 exists.", "")
        doc = write(tmp_path / "doc.md", text)
        result = check_docs(paths=[doc], execute=False, coverage=True)
        (problem,) = result.problems
        assert problem.kind == "coverage"
        assert "RPR202" in problem.message

    def test_substring_mentions_do_not_count(self, tmp_path):
        # "repro serves" must not satisfy "repro serve".
        text = full_coverage_text().replace("`repro serve`", "repro serves")
        doc = write(tmp_path / "doc.md", text)
        result = check_docs(paths=[doc], execute=False, coverage=True)
        assert [p.kind for p in result.problems] == ["coverage"]


class TestRepoDocs:
    def test_default_paths_cover_readme_and_docs(self):
        paths = [p.name for p in default_doc_paths(REPO_ROOT)]
        assert "README.md" in paths
        assert "API.md" in paths
        assert "AUTOSCALING.md" in paths

    def test_repo_docs_have_no_broken_links(self):
        result = check_docs(root=REPO_ROOT, execute=False)
        assert result.ok, result.render()
