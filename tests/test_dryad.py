"""Tests for the DryadLINQ substrate: graph, partitions, simulator."""

import pytest

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.dryad import (
    DryadGraph,
    DryadLinqConfig,
    DryadLinqSimulator,
    DryadTable,
    LocalDryadLinq,
    Vertex,
    partition_tasks,
)
from repro.workloads.genome import cap3_task_specs


class TestGraph:
    def test_add_and_lookup(self):
        g = DryadGraph()
        g.add_vertex(Vertex("v1"))
        g.add_vertex(Vertex("v2"))
        g.add_channel("v1", "v2")
        assert len(g) == 2
        assert "v1" in g
        assert g.successors("v1") == ["v2"]
        assert g.predecessors("v2") == ["v1"]

    def test_duplicate_vertex_rejected(self):
        g = DryadGraph()
        g.add_vertex(Vertex("v"))
        with pytest.raises(ValueError):
            g.add_vertex(Vertex("v"))

    def test_self_channel_rejected(self):
        g = DryadGraph()
        g.add_vertex(Vertex("v"))
        with pytest.raises(ValueError):
            g.add_channel("v", "v")

    def test_unknown_endpoint_rejected(self):
        g = DryadGraph()
        g.add_vertex(Vertex("v"))
        with pytest.raises(KeyError):
            g.add_channel("v", "ghost")

    def test_stages_topological(self):
        g = DryadGraph()
        for v in ("a", "b", "c", "d"):
            g.add_vertex(Vertex(v))
        g.add_channel("a", "c")
        g.add_channel("b", "c")
        g.add_channel("c", "d")
        stages = g.stages()
        names = [[v.vertex_id for v in layer] for layer in stages]
        assert names == [["a", "b"], ["c"], ["d"]]

    def test_cycle_detected(self):
        g = DryadGraph()
        g.add_vertex(Vertex("a"))
        g.add_vertex(Vertex("b"))
        g.add_channel("a", "b")
        g.add_channel("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.stages()


class TestPartitions:
    def test_even_split(self):
        tasks = cap3_task_specs(12)
        ps = partition_tasks(tasks, 4)
        assert ps.sizes() == [3, 3, 3, 3]
        flattened = [t for p in ps.partitions for t in p]
        assert flattened == tasks  # contiguous, order-preserving

    def test_uneven_split(self):
        tasks = cap3_task_specs(10)
        ps = partition_tasks(tasks, 4)
        assert ps.sizes() == [3, 3, 2, 2]

    def test_homogeneous_work_is_balanced(self):
        tasks = cap3_task_specs(16, inhomogeneous=False)
        ps = partition_tasks(tasks, 4)
        assert ps.imbalance() == pytest.approx(1.0)

    def test_inhomogeneous_work_is_imbalanced(self):
        tasks = cap3_task_specs(64, inhomogeneous=True, seed=3)
        ps = partition_tasks(tasks, 8)
        assert ps.imbalance() > 1.05

    def test_metadata_files(self, tmp_path):
        tasks = cap3_task_specs(6)
        ps = partition_tasks(tasks, 2)
        paths = ps.write_metadata(tmp_path)
        assert len(paths) == 2
        content = paths[0].read_text()
        assert content.startswith("#partition\t0\t3")
        assert tasks[0].task_id in content

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_tasks([], 2)
        with pytest.raises(ValueError):
            partition_tasks(cap3_task_specs(4), 0)


def dryad_config(**kwargs):
    defaults = dict(
        cluster=get_cluster("cap3-baremetal-windows").subset(4), seed=11
    )
    defaults.update(kwargs)
    return DryadLinqConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


class TestDryadSimulator:
    def test_requires_windows_cluster(self):
        with pytest.raises(ValueError, match="Windows"):
            DryadLinqConfig(cluster=get_cluster("cap3-baremetal"))

    def test_all_tasks_complete(self, cap3):
        tasks = cap3_task_specs(48, reads_per_file=200)
        result = DryadLinqSimulator(dryad_config()).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert result.backend == "dryadlinq"
        assert result.extras["n_vertices"] == 4.0

    def test_select_builds_one_vertex_per_partition(self):
        tasks = cap3_task_specs(20)
        table = DryadTable.from_tasks(tasks, 5)
        graph = table.select("cap3")
        assert len(graph) == 5
        assert [v.preferred_node for v in graph.vertices()] == [0, 1, 2, 3, 4]

    def test_homogeneous_tasks_high_efficiency(self, cap3):
        tasks = cap3_task_specs(128, reads_per_file=458)
        sim = DryadLinqSimulator(dryad_config())
        t1 = sim.estimate_sequential_time(cap3, tasks)
        result = sim.run(cap3, tasks)
        efficiency = t1 / (sim.config.total_cores * result.makespan_seconds)
        assert efficiency > 0.8

    def test_static_partitioning_hurts_on_clustered_skew(self, cap3):
        """The paper's load-balancing finding: DryadLINQ's static
        partitions lag Hadoop's dynamic global queue on inhomogeneous
        data.  Heavy files that happen to sit together in file order all
        land in one node's partition; Hadoop's queue spreads them."""
        from dataclasses import replace

        from repro.hadoop import HadoopJobConfig, HadoopSimulator

        tasks = cap3_task_specs(64, reads_per_file=300)
        # The last 16 files (one contiguous partition on 4 nodes) are 4x
        # heavier — e.g. a batch of long-insert libraries.
        tasks = [
            replace(t, work_units=t.work_units * (4.0 if i >= 48 else 1.0))
            for i, t in enumerate(tasks)
        ]
        dryad = DryadLinqSimulator(dryad_config()).run(cap3, tasks)
        hadoop = HadoopSimulator(
            HadoopJobConfig(
                cluster=get_cluster("cap3-baremetal").subset(4), seed=11
            )
        ).run(cap3, tasks)
        assert dryad.extras["partition_imbalance"] > 1.5
        # Undo Cap3's 12.5% Windows advantage before comparing balance.
        dryad_adjusted = dryad.makespan_seconds / 1.125
        assert dryad_adjusted > 1.2 * hadoop.makespan_seconds

    def test_vertex_failures_retried(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        result = DryadLinqSimulator(
            dryad_config(vertex_failure_probability=0.15)
        ).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert max(r.attempt for r in result.records) > 1

    def test_deterministic(self, cap3):
        tasks = cap3_task_specs(24, reads_per_file=200)
        a = DryadLinqSimulator(dryad_config()).run(cap3, tasks)
        b = DryadLinqSimulator(dryad_config()).run(cap3, tasks)
        assert a.makespan_seconds == b.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract

    def test_empty_tasks_rejected(self, cap3):
        with pytest.raises(ValueError):
            DryadLinqSimulator(dryad_config()).run(cap3, [])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            dryad_config(workers_per_node=0)
        with pytest.raises(ValueError):
            dryad_config(workers_per_node=99)


class TestLocalDryad:
    def test_real_select_end_to_end(self, tmp_path):
        from repro.apps.executables import Cap3Executable
        from repro.apps.fasta import read_fasta
        from repro.workloads.genome import write_cap3_workload

        tasks = write_cap3_workload(tmp_path, n_files=6, reads_per_file=10)
        result = LocalDryadLinq(n_nodes=2, workers_per_node=2).run(
            Cap3Executable(), tasks
        )
        assert len(result.completed_task_ids) == 6
        assert result.extras["partition_imbalance"] >= 1.0
        for task in tasks:
            assert read_fasta(task.output_key)

    def test_node_assignment_is_static(self, tmp_path):
        from repro.apps.executables import Cap3Executable
        from repro.workloads.genome import write_cap3_workload

        tasks = write_cap3_workload(tmp_path, n_files=8, reads_per_file=8)
        result = LocalDryadLinq(n_nodes=4, workers_per_node=1).run(
            Cap3Executable(), tasks
        )
        by_node = {}
        for record in result.records:
            by_node.setdefault(record.worker, []).append(record.task_id)
        assert len(by_node) == 4
        assert all(len(ids) == 2 for ids in by_node.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalDryadLinq(n_nodes=0)
        with pytest.raises(ValueError):
            LocalDryadLinq().run(None, [])
