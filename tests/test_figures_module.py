"""Smoke tests for the programmatic figure surface."""

import pytest

from repro.figures import available_figures, render_figure


def test_available_figures_lists_all():
    assert available_figures() == [
        "autoscale",
        "chaos",
        "fig10_11",
        "fig12_13",
        "fig14_15",
        "fig3_4",
        "fig5_6",
        "fig7_8",
        "fig9",
        "serve",
    ]


@pytest.mark.parametrize("figure_id", ["fig3_4", "fig9", "fig12_13"])
def test_render_fast_figures(figure_id):
    text = render_figure(figure_id)
    assert "|" in text  # a table came out
    assert len(text.splitlines()) >= 4


def test_render_unknown_raises():
    with pytest.raises(KeyError, match="unknown figure"):
        render_figure("fig99")


def test_fig3_4_contains_paper_deployments():
    text = render_figure("fig3_4")
    for label in ("L - 8 x 2", "XL - 4 x 4", "HCXL - 2 x 8", "HM4XL - 2 x 8"):
        assert label in text
