"""Golden-text regression for the analysis renderers.

A fully pinned 2-worker ClassicCloud Cap3 run (no faults, no jitter,
fixed seed) must render byte-identical ``gantt_text`` and
``phase_breakdown`` output across commits.  If an intentional model or
renderer change moves these bytes, regenerate the fixture with
``python tests/test_golden_analysis.py`` and review the diff.
"""

from pathlib import Path

from repro.cloud.failures import FaultPlan
from repro.core.analysis import gantt_text, phase_breakdown
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.workloads.genome import cap3_task_specs

GOLDEN = Path(__file__).parent / "golden" / "gantt_classiccloud_2worker.txt"


def deterministic_run():
    app = get_application("cap3")
    tasks = cap3_task_specs(8, reads_per_file=150)
    backend = make_backend(
        "ec2",
        instance_type="L",
        n_instances=1,
        workers_per_instance=2,
        fault_plan=FaultPlan.none(),
        perf_jitter=0.0,
        seed=11,
    )
    return backend.run(app, tasks)


def render(result) -> str:
    lines = [gantt_text(result, width=60), ""]
    lines.append("phase breakdown:")
    for phase, fraction in phase_breakdown(result).items():
        lines.append(f"  {phase:<8s} {100 * fraction:6.2f}%")
    return "\n".join(lines) + "\n"


def test_gantt_and_phases_match_golden_bytes():
    assert render(deterministic_run()) == GOLDEN.read_text(encoding="utf-8")


def test_run_is_deterministic():
    assert render(deterministic_run()) == render(deterministic_run())


if __name__ == "__main__":
    GOLDEN.write_text(render(deterministic_run()), encoding="utf-8")
    print(f"regenerated {GOLDEN}")
