"""Tests for the Hadoop substrate: HDFS, input format, job simulator."""

import numpy as np
import pytest

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.hadoop import (
    FileNameInputFormat,
    HadoopJobConfig,
    HadoopSimulator,
    HdfsClient,
    MiniHadoop,
)
from repro.workloads.genome import cap3_task_specs


class TestHdfs:
    def make(self, n_nodes=8, replication=3, seed=0):
        return HdfsClient(
            n_nodes, np.random.default_rng(seed), replication=replication
        )

    def test_put_places_distinct_replicas(self):
        hdfs = self.make()
        f = hdfs.put("a", 1000)
        assert len(f.replicas) == 3
        assert len(set(f.replicas)) == 3
        assert all(0 <= r < 8 for r in f.replicas)

    def test_replication_capped_at_nodes(self):
        hdfs = HdfsClient(2, np.random.default_rng(0), replication=3)
        f = hdfs.put("a", 10)
        assert len(f.replicas) == 2

    def test_duplicate_put_rejected(self):
        hdfs = self.make()
        hdfs.put("a", 10)
        with pytest.raises(FileExistsError):
            hdfs.put("a", 10)

    def test_local_read_faster_than_remote(self):
        hdfs = self.make()
        hdfs.put("a", 10_000_000)
        local_node = hdfs.locations("a")[0]
        remote_node = next(
            n for n in range(8) if n not in hdfs.locations("a")
        )
        t_local = hdfs.read_seconds("a", local_node)
        t_remote = hdfs.read_seconds("a", remote_node)
        assert t_remote > t_local
        assert hdfs.stats.local_reads == 1
        assert hdfs.stats.remote_reads == 1

    def test_locality_fraction(self):
        hdfs = self.make()
        hdfs.put("a", 100)
        node = hdfs.locations("a")[0]
        hdfs.read_seconds("a", node)
        assert hdfs.locality_fraction == 1.0

    def test_placement_roughly_balanced(self):
        hdfs = self.make(n_nodes=8, seed=1)
        for i in range(400):
            hdfs.put(f"f{i}", 1000)
        per_node = hdfs.node_utilization()
        # 400 files x 3 replicas over 8 nodes: 150 expected per node.
        assert per_node.min() > 100_000
        assert per_node.max() < 200_000

    def test_validation(self):
        with pytest.raises(ValueError):
            HdfsClient(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            HdfsClient(2, np.random.default_rng(0), replication=0)
        hdfs = self.make()
        with pytest.raises(ValueError):
            hdfs.put("neg", -1)
        with pytest.raises(ValueError):
            hdfs.write_seconds(-1)


class TestInputFormat:
    def test_splits_one_per_file(self, tmp_path):
        for name in ("b.fa", "a.fa", "c.fa"):
            (tmp_path / name).write_text(">x\nACGT\n")
        splits = FileNameInputFormat("*.fa").get_splits(tmp_path)
        assert [s.path.split("/")[-1] for s in splits] == ["a.fa", "b.fa", "c.fa"]
        assert all(s.size > 0 for s in splits)

    def test_record_reader_yields_name_and_path(self, tmp_path):
        (tmp_path / "task.fa").write_text(">x\nACGT\n")
        fmt = FileNameInputFormat()
        (split,) = fmt.get_splits(tmp_path)
        reader = fmt.create_record_reader(split)
        assert reader.progress == 0.0
        records = list(reader)
        assert records == [("task.fa", str(tmp_path / "task.fa"))]
        assert reader.progress == 1.0

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no input files"):
            FileNameInputFormat().get_splits(tmp_path)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            FileNameInputFormat().get_splits(tmp_path / "nope")

    def test_pattern_filters(self, tmp_path):
        (tmp_path / "a.fa").write_text(">x\nA\n")
        (tmp_path / "b.txt").write_text("not fasta")
        splits = FileNameInputFormat("*.fa").get_splits(tmp_path)
        assert len(splits) == 1


def hadoop_config(**kwargs):
    defaults = dict(cluster=get_cluster("cap3-baremetal").subset(4), seed=5)
    defaults.update(kwargs)
    return HadoopJobConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


class TestHadoopSimulator:
    def test_all_tasks_complete(self, cap3):
        tasks = cap3_task_specs(48, reads_per_file=200)
        result = HadoopSimulator(hadoop_config()).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert result.makespan_seconds > 0
        assert result.backend == "hadoop"

    def test_data_locality_majority_local(self, cap3):
        """With replication 3 over 4 nodes and locality-aware scheduling,
        nearly every read should be local."""
        tasks = cap3_task_specs(64, reads_per_file=200)
        result = HadoopSimulator(hadoop_config()).run(cap3, tasks)
        assert result.extras["locality_fraction"] > 0.9

    def test_locality_off_causes_remote_reads(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        off = HadoopSimulator(hadoop_config(locality_aware=False)).run(
            cap3, tasks
        )
        on = HadoopSimulator(hadoop_config(locality_aware=True)).run(cap3, tasks)
        assert off.extras["locality_fraction"] < on.extras["locality_fraction"]

    def test_deterministic(self, cap3):
        tasks = cap3_task_specs(24, reads_per_file=200)
        a = HadoopSimulator(hadoop_config(seed=9)).run(cap3, tasks)
        b = HadoopSimulator(hadoop_config(seed=9)).run(cap3, tasks)
        assert a.makespan_seconds == b.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract

    def test_more_nodes_faster(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        small = HadoopSimulator(
            hadoop_config(cluster=get_cluster("cap3-baremetal").subset(2))
        ).run(cap3, tasks)
        large = HadoopSimulator(
            hadoop_config(cluster=get_cluster("cap3-baremetal").subset(8))
        ).run(cap3, tasks)
        assert large.makespan_seconds < small.makespan_seconds / 2.0

    def test_task_failures_retried(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        result = HadoopSimulator(
            hadoop_config(task_failure_probability=0.15)
        ).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        attempts = [r.attempt for r in result.records]
        assert max(attempts) > 1  # some retries happened

    def test_speculative_execution_rescues_stragglers(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        with_spec = HadoopSimulator(
            hadoop_config(
                straggler_probability=0.1,
                straggler_slowdown=8.0,
                speculative_execution=True,
            )
        ).run(cap3, tasks)
        without = HadoopSimulator(
            hadoop_config(
                straggler_probability=0.1,
                straggler_slowdown=8.0,
                speculative_execution=False,
            )
        ).run(cap3, tasks)
        assert with_spec.extras["speculative_attempts"] > 0
        assert with_spec.makespan_seconds < without.makespan_seconds

    def test_sequential_estimate_gives_high_efficiency(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        sim = HadoopSimulator(hadoop_config())
        t1 = sim.estimate_sequential_time(cap3, tasks)
        result = sim.run(cap3, tasks)
        cores = sim.config.total_slots
        efficiency = t1 / (cores * result.makespan_seconds)
        assert 0.7 < efficiency <= 1.0

    def test_lpt_policy_still_completes_everything(self, cap3):
        tasks = cap3_task_specs(48, reads_per_file=200, inhomogeneous=True)
        result = HadoopSimulator(
            hadoop_config(scheduling_policy="lpt")
        ).run(cap3, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="scheduling_policy"):
            hadoop_config(scheduling_policy="random")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            hadoop_config(map_slots_per_node=0)
        with pytest.raises(ValueError):
            hadoop_config(map_slots_per_node=99)
        with pytest.raises(ValueError):
            hadoop_config(task_failure_probability=1.0)
        with pytest.raises(ValueError):
            hadoop_config(max_attempts=0)

    def test_gtm_cluster_uses_8_of_24_slots(self):
        config = HadoopJobConfig(cluster=get_cluster("gtm-hadoop"))
        assert config.slots_per_node == 8

    def test_empty_tasks_rejected(self, cap3):
        with pytest.raises(ValueError):
            HadoopSimulator(hadoop_config()).run(cap3, [])


class TestMiniHadoop:
    def test_real_map_only_job(self, tmp_path):
        from repro.apps.executables import Cap3Executable
        from repro.workloads.genome import write_cap3_workload

        write_cap3_workload(tmp_path, n_files=4, reads_per_file=10)
        result = MiniHadoop(n_slots=2).run_job(
            Cap3Executable(), tmp_path / "in", tmp_path / "mapout", "*.fa"
        )
        assert result.n_tasks == 4
        assert len(result.completed_task_ids) == 4
        for record in result.records:
            out = tmp_path / "mapout" / record.task_id
            assert out.exists()
            assert out.stat().st_size > 0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            MiniHadoop(n_slots=0)
        with pytest.raises(ValueError):
            MiniHadoop(max_attempts=0)

    def test_flaky_executable_retried(self, tmp_path):
        """A map task that fails on its first attempts re-executes, as
        Hadoop re-runs failed tasks."""
        from repro.apps.executables import Cap3Executable, Executable
        from repro.workloads.genome import write_cap3_workload

        write_cap3_workload(tmp_path, n_files=3, reads_per_file=8)

        class FlakyOnce(Executable):
            name = "flaky-cap3"

            def __init__(self):
                self.failed: set[str] = set()
                self.inner = Cap3Executable()

            def run(self, input_path, output_path):
                key = str(input_path)
                if key not in self.failed:
                    self.failed.add(key)
                    raise IOError("transient failure")
                self.inner.run(input_path, output_path)

        result = MiniHadoop(n_slots=2, max_attempts=3).run_job(
            FlakyOnce(), tmp_path / "in", tmp_path / "retryout", "*.fa"
        )
        assert len(result.completed_task_ids) == 3
        assert all(r.attempt == 2 for r in result.records)

    def test_permanently_failing_task_fails_job(self, tmp_path):
        from repro.apps.executables import Executable
        from repro.workloads.genome import write_cap3_workload

        write_cap3_workload(tmp_path, n_files=2, reads_per_file=8)

        class AlwaysFails(Executable):
            name = "broken"

            def run(self, input_path, output_path):
                raise IOError("permanent failure")

        with pytest.raises(RuntimeError, match="failed 2 attempts"):
            MiniHadoop(n_slots=2, max_attempts=2).run_job(
                AlwaysFails(), tmp_path / "in", tmp_path / "failout", "*.fa"
            )
