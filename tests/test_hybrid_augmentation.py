"""Tests for hybrid cloud + on-premise augmentation (paper §2.1.3).

"One interesting feature of the Classic Cloud framework is the ability
to extend it to use the local machines and clusters side by side with
the clouds. Although it might not be the best option due to the data
being stored in the cloud, one can start workers in computers outside
of the cloud to augment compute capacity."
"""

import pytest

from repro.classiccloud import (
    ClassicCloudConfig,
    ClassicCloudFramework,
    LocalAugmentation,
)
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs
from repro.workloads.pubchem import gtm_task_specs


def config(augmentation=None, **kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=1,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        seed=9,
        local_augmentation=augmentation,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


class TestLocalAugmentationValidation:
    def test_workers_bounded_by_cores(self):
        with pytest.raises(ValueError):
            LocalAugmentation(n_workers=0)
        with pytest.raises(ValueError):
            LocalAugmentation(n_workers=9)  # default machine has 8 cores

    def test_wan_parameters_positive(self):
        with pytest.raises(ValueError):
            LocalAugmentation(n_workers=2, wan_bandwidth_mbps=0)
        with pytest.raises(ValueError):
            LocalAugmentation(n_workers=2, wan_latency_s=-1)


class TestHybridExecution:
    def test_augmentation_speeds_up_compute_bound_work(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        cloud_only = ClassicCloudFramework(config()).run(cap3, tasks)
        hybrid = ClassicCloudFramework(
            config(LocalAugmentation(n_workers=8))
        ).run(cap3, tasks)
        # 8 extra 2.33 GHz cores next to 8 HCXL cores: close to 2x.
        speedup = cloud_only.makespan_seconds / hybrid.makespan_seconds
        assert 1.5 < speedup < 2.2

    def test_local_workers_actually_execute_tasks(self, cap3):
        tasks = cap3_task_specs(64, reads_per_file=200)
        result = ClassicCloudFramework(
            config(LocalAugmentation(n_workers=8))
        ).run(cap3, tasks)
        local_records = [r for r in result.records if "local" in r.worker]
        cloud_records = [r for r in result.records if "local" not in r.worker]
        assert local_records and cloud_records
        assert result.completed_task_ids == {t.task_id for t in tasks}

    def test_local_workers_pay_wan_transfer_costs(self, cap3):
        """The paper's caveat: the data lives in the cloud, so local
        workers' downloads are slower."""
        tasks = cap3_task_specs(48, reads_per_file=458)  # ~220 KB inputs
        result = ClassicCloudFramework(
            config(
                LocalAugmentation(
                    n_workers=8, wan_bandwidth_mbps=5.0, wan_latency_s=0.1
                )
            )
        ).run(cap3, tasks)
        local = [r for r in result.records if "local" in r.worker]
        cloud = [r for r in result.records if "local" not in r.worker]
        assert local and cloud
        avg_local_dl = sum(r.download_time for r in local) / len(local)
        avg_cloud_dl = sum(r.download_time for r in cloud) / len(cloud)
        assert avg_local_dl > 3.0 * avg_cloud_dl

    def test_data_heavy_work_benefits_less(self):
        """GTM's ~66 MB inputs over a 10 Mbps WAN: augmentation gains
        little — matching 'it might not be the best option'."""
        gtm = get_application("gtm")
        tasks = gtm_task_specs(n_files=48)
        cap3 = get_application("cap3")
        cap3_tasks = cap3_task_specs(48, reads_per_file=458)
        augmentation = LocalAugmentation(n_workers=8, wan_bandwidth_mbps=10.0)

        def speedup(app, task_list):
            base = ClassicCloudFramework(config()).run(app, task_list)
            hybrid = ClassicCloudFramework(config(augmentation)).run(
                app, task_list
            )
            return base.makespan_seconds / hybrid.makespan_seconds

        cap3_speedup = speedup(cap3, cap3_tasks)
        gtm_speedup = speedup(gtm, tasks)
        assert gtm_speedup < cap3_speedup
        assert gtm_speedup < 1.45  # WAN-bound: far from the ~2x core ratio

    def test_billing_excludes_local_workers(self, cap3):
        tasks = cap3_task_specs(32, reads_per_file=200)
        cloud_only = ClassicCloudFramework(config()).run(cap3, tasks)
        hybrid = ClassicCloudFramework(
            config(LocalAugmentation(n_workers=4))
        ).run(cap3, tasks)
        # Same single HCXL instance billed; local machines are free.
        assert (
            hybrid.billing.compute_cost == cloud_only.billing.compute_cost
        )
