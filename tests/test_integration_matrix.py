"""Integration: every application on every backend.

The paper's framework promise is one contract (file in, file out,
idempotent) over four platforms.  These tests run each app's workload on
each simulated backend and the real local backend, checking completion,
accounting invariants and cross-backend consistency.
"""

import pytest

from repro.cloud.failures import FaultPlan
from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.workloads.genome import cap3_task_specs
from repro.workloads.protein import blast_task_specs
from repro.workloads.pubchem import gtm_task_specs

APPS = {
    "cap3": lambda: cap3_task_specs(24, reads_per_file=200),
    "blast": lambda: blast_task_specs(24, inhomogeneous_base=False),
    "gtm": lambda: gtm_task_specs(24),
}

SIM_BACKENDS = {
    "ec2": lambda: make_backend(
        "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=3
    ),
    "azure": lambda: make_backend(
        "azure", n_instances=8, fault_plan=FaultPlan.none(), seed=3
    ),
    "hadoop": lambda: make_backend(
        "hadoop", cluster=get_cluster("cap3-baremetal").subset(2), seed=3
    ),
    "dryadlinq": lambda: make_backend(
        "dryadlinq",
        cluster=get_cluster("cap3-baremetal-windows").subset(2),
        seed=3,
    ),
}


@pytest.mark.parametrize("app_name", sorted(APPS))
@pytest.mark.parametrize("backend_name", sorted(SIM_BACKENDS))
def test_app_backend_matrix(app_name, backend_name):
    app = get_application(app_name)
    tasks = APPS[app_name]()
    backend = SIM_BACKENDS[backend_name]()
    result = backend.run(app, tasks)

    # Completion: every task done, exactly the requested set.
    assert result.completed_task_ids == {t.task_id for t in tasks}
    assert result.n_tasks == len(tasks)
    assert result.makespan_seconds > 0

    # Accounting invariants.
    winners = [r for r in result.records if r.won]
    assert len(winners) == len(tasks)
    for record in result.records:
        assert record.finished_at >= record.started_at
        assert record.compute_time > 0
        assert record.attempt >= 1

    # Cloud backends bill; cluster backends don't.
    if backend_name in ("ec2", "azure"):
        assert result.billing is not None
        assert result.billing.compute_cost > 0
    else:
        assert result.billing is None


@pytest.mark.parametrize("app_name", sorted(APPS))
def test_sequential_estimate_bounds_parallel_time(app_name):
    """T1 >= Tp >= T1 / P: speedup can't exceed the core count."""
    app = get_application(app_name)
    tasks = APPS[app_name]()
    backend = SIM_BACKENDS["ec2"]()
    result = backend.run(app, tasks)
    t1 = backend.estimate_sequential_time(app, tasks)
    assert result.makespan_seconds <= t1  # parallelism helps
    assert result.makespan_seconds >= t1 / backend.total_cores * 0.99


def test_same_workload_same_completion_across_backends():
    """All four backends complete the identical task set."""
    app = get_application("cap3")
    tasks = cap3_task_specs(20, reads_per_file=200)
    completions = {
        name: factory().run(app, tasks).completed_task_ids
        for name, factory in SIM_BACKENDS.items()
    }
    reference = completions["ec2"]
    assert all(ids == reference for ids in completions.values())


def test_local_backend_runs_real_cap3(tmp_path):
    from repro.apps.executables import Cap3Executable
    from repro.apps.fasta import read_fasta
    from repro.core.api import run
    from repro.workloads.genome import write_cap3_workload

    app = get_application("cap3", executable_factory=Cap3Executable)
    tasks = write_cap3_workload(tmp_path, n_files=4, reads_per_file=10)
    result = run(app, tasks, backend="local", n_workers=2)
    assert len(result.completed_task_ids) == 4
    for task in tasks:
        assert read_fasta(task.output_key)


def test_faulty_environment_still_correct_everywhere():
    """Crashes + queue artifacts + storage errors on EC2; task failures
    on Hadoop; vertex failures on Dryad — everything still completes."""
    from repro.cloud.failures import WorkerCrash

    app = get_application("cap3")
    tasks = cap3_task_specs(24, reads_per_file=200)

    chaotic_ec2 = make_backend(
        "ec2",
        n_instances=2,
        fault_plan=FaultPlan(
            worker_crashes=[WorkerCrash(worker_index=3, at_time=40.0)],
            message_duplicate_probability=0.05,
            queue_miss_probability=0.05,
            storage_error_rate=0.05,
        ),
        visibility_timeout_s=150.0,
        seed=5,
    )
    assert chaotic_ec2.run(app, tasks).completed_task_ids == {
        t.task_id for t in tasks
    }

    flaky_hadoop = make_backend(
        "hadoop",
        cluster=get_cluster("cap3-baremetal").subset(2),
        task_failure_probability=0.2,
        max_attempts=10,
        seed=5,
    )
    assert flaky_hadoop.run(app, tasks).completed_task_ids == {
        t.task_id for t in tasks
    }

    flaky_dryad = make_backend(
        "dryadlinq",
        cluster=get_cluster("cap3-baremetal-windows").subset(2),
        vertex_failure_probability=0.2,
        max_attempts=10,
        seed=5,
    )
    assert flaky_dryad.run(app, tasks).completed_task_ids == {
        t.task_id for t in tasks
    }
