"""Tests for the whole-program lint pass (RPR101–RPR106) and the v2
CLI surface: ``--rules``, ``--baseline``, ``--exclude``, JSON schema."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import ProjectModel, lint_file, lint_paths
from repro.lint.checker import collect_files, parse_file

FIXTURES = Path(__file__).parent / "lint_fixtures" / "project"
SRC = Path(__file__).parent.parent / "src" / "repro"

PROJECT_CODES = (
    "RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106",
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def build_model(*names):
    parsed = [parse_file(FIXTURES / name) for name in names]
    return ProjectModel.build([p.module for p in parsed if p.module])


class TestFixtures:
    @pytest.mark.parametrize("code", PROJECT_CODES)
    def test_trigger_fires_exactly_its_rule(self, code):
        fixture = FIXTURES / f"rpr{code[3:]}_trigger.py"
        result = lint_file(fixture)
        assert not result.ok
        assert {v.code for v in result.violations} == {code}
        assert all(v.line > 0 for v in result.violations)

    @pytest.mark.parametrize("code", PROJECT_CODES)
    def test_clean_variant_passes(self, code):
        result = lint_file(FIXTURES / f"rpr{code[3:]}_clean.py")
        assert result.ok, [v.format() for v in result.violations]

    @pytest.mark.parametrize("code", PROJECT_CODES)
    def test_noqa_variant_suppresses(self, code):
        result = lint_file(FIXTURES / f"rpr{code[3:]}_noqa.py")
        assert result.ok
        assert code in {v.code for v in result.suppressed}

    def test_noqa_file_suppresses_project_rule(self):
        result = lint_file(FIXTURES / "rpr101_noqa_file.py")
        assert result.ok
        assert "RPR101" in {v.code for v in result.suppressed}

    def test_rpr104_chunked_submission_trigger(self):
        result = lint_file(FIXTURES / "rpr104_chunk_trigger.py")
        assert not result.ok
        assert {v.code for v in result.violations} == {"RPR104"}
        (violation,) = result.violations
        assert "chunk" in violation.message

    def test_rpr104_chunked_submission_clean(self):
        result = lint_file(FIXTURES / "rpr104_chunk_clean.py")
        assert result.ok, [v.format() for v in result.violations]

    def test_rpr104_chunked_submission_noqa(self):
        result = lint_file(FIXTURES / "rpr104_chunk_noqa.py")
        assert result.ok
        assert "RPR104" in {v.code for v in result.suppressed}

    def test_rpr104_dict_payload_trigger(self):
        result = lint_file(FIXTURES / "rpr104_payload_trigger.py")
        assert not result.ok
        assert {v.code for v in result.violations} == {"RPR104"}
        (violation,) = result.violations
        assert "lambda" in violation.message

    def test_rpr105_worker_span_closed_in_finally_is_clean(self):
        result = lint_file(FIXTURES / "rpr105_worker_clean.py")
        assert result.ok, [v.format() for v in result.violations]

    def test_rpr105_worker_span_without_finally_triggers(self):
        result = lint_file(FIXTURES / "rpr105_worker_trigger.py")
        assert not result.ok
        assert {v.code for v in result.violations} == {"RPR105"}
        (violation,) = result.violations
        assert "run_chunk" in violation.message

    def test_rpr105_worker_noqa_suppresses(self):
        result = lint_file(FIXTURES / "rpr105_worker_noqa.py")
        assert result.ok
        assert "RPR105" in {v.code for v in result.suppressed}

    def test_rpr103_message_carries_the_call_chain(self):
        result = lint_file(FIXTURES / "rpr103_trigger.py")
        (violation,) = result.violations
        assert "_driver" in violation.message
        assert "_step" in violation.message
        assert "time.time" in violation.message


class TestProjectModel:
    def test_thread_entry_detection(self):
        model = build_model("rpr101_trigger.py")
        assert model.thread_entries() == ["rpr101_trigger.worker"]

    def test_sim_entry_detection(self):
        model = build_model("rpr103_trigger.py")
        assert model.sim_entries() == ["rpr103_trigger.Runner._driver"]

    def test_self_method_calls_resolve(self):
        model = build_model("rpr103_trigger.py")
        parents = model.reachable(model.sim_entries())
        assert "rpr103_trigger.Runner._step" in parents
        chain = ProjectModel.chain(parents, "rpr103_trigger.Runner._step")
        assert chain == [
            "rpr103_trigger.Runner._driver",
            "rpr103_trigger.Runner._step",
        ]

    def test_lock_sites_are_scope_qualified(self):
        model = build_model("rpr102_trigger.py")
        keys = {
            site.key
            for fn in model.functions.values()
            for site in fn.lock_sites
        }
        assert keys == {
            "rpr102_trigger.lock_a",
            "rpr102_trigger.lock_b",
        }

    def test_single_parse_is_shared_between_passes(self, monkeypatch):
        import repro.lint.checker as checker_mod

        calls = []
        real = checker_mod.parse_file

        def counting(path):
            calls.append(path)
            return real(path)

        monkeypatch.setattr(checker_mod, "parse_file", counting)
        checker_mod.lint_paths([FIXTURES / "rpr101_trigger.py"])
        assert len(calls) == 1

    def test_duplicate_path_arguments_are_deduped(self):
        fixture = FIXTURES / "rpr101_trigger.py"
        files = collect_files([fixture, fixture, FIXTURES])
        assert files.count(fixture) == 1


class TestRulesFlag:
    def test_rules_file_skips_project_pass(self):
        result = lint_paths([FIXTURES / "rpr101_trigger.py"], rules="file")
        assert result.ok

    def test_rules_project_skips_file_pass(self, tmp_path):
        bad = tmp_path / "both.py"
        bad.write_text(
            "def f(x=[]):\n    return x\n", encoding="utf-8"
        )  # RPR004, but no project finding
        result = lint_paths([bad], rules="project")
        assert result.ok

    def test_rules_all_runs_both(self, tmp_path):
        result = lint_paths([FIXTURES / "rpr101_trigger.py"], rules="all")
        assert {v.code for v in result.violations} == {"RPR101"}

    def test_bad_rules_value_raises(self):
        with pytest.raises(ValueError):
            lint_paths([FIXTURES], rules="everything")

    def test_cli_rules_flag(self):
        code, _ = run_cli(
            "lint", str(FIXTURES / "rpr101_trigger.py"), "--rules", "file"
        )
        assert code == 0
        code, _ = run_cli(
            "lint", str(FIXTURES / "rpr101_trigger.py"), "--rules", "all"
        )
        assert code == 1

    def test_select_filters_project_rules(self):
        result = lint_paths(
            [FIXTURES / "rpr101_trigger.py"], select=["RPR102"]
        )
        assert result.ok


class TestCliSurface:
    def test_src_repro_clean_under_all_rules(self):
        code, output = run_cli("lint", "--rules", "all", str(SRC))
        assert code == 0, output

    def test_json_schema_v2(self):
        code, output = run_cli(
            "lint", str(FIXTURES / "rpr101_trigger.py"), "--format", "json"
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["schema"] == "repro-lint/2"
        assert payload["ok"] is False
        assert payload["baselined"] == []
        assert isinstance(payload["suppressed"], int)
        (violation,) = payload["violations"]
        assert set(violation) == {"path", "line", "col", "code", "message"}

    def test_exclude_skips_directories(self):
        code, output = run_cli(
            "lint", str(FIXTURES.parent), "--exclude", "project",
            "--rules", "project", "--format", "json",
        )
        assert code == 0, output
        payload = json.loads(output)
        assert payload["ok"] is True

    def test_explicit_file_beats_exclude(self):
        code, _ = run_cli(
            "lint", str(FIXTURES / "rpr101_trigger.py"),
            "--exclude", "project",
        )
        assert code == 1

    def test_list_rules_includes_project_family(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_code in PROJECT_CODES:
            assert rule_code in output

    def test_unknown_select_code_is_exit_2(self):
        code, output = run_cli("lint", "--select", "RPR999", str(FIXTURES))
        assert code == 2
        assert "unknown rule code" in output


class TestBaseline:
    def test_write_then_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rpr101_trigger.py")
        code, output = run_cli(
            "lint", fixture, "--write-baseline", str(baseline)
        )
        assert code == 0
        assert "1 finding" in output
        code, output = run_cli("lint", fixture, "--baseline", str(baseline))
        assert code == 0, output
        assert "1 baselined" in output

    def test_new_finding_still_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _ = run_cli(
            "lint", str(FIXTURES / "rpr101_trigger.py"),
            "--write-baseline", str(baseline),
        )
        assert code == 0
        code, output = run_cli(
            "lint",
            str(FIXTURES / "rpr101_trigger.py"),
            str(FIXTURES / "rpr102_trigger.py"),
            "--baseline", str(baseline),
        )
        assert code == 1
        assert "RPR102" in output
        assert "RPR101" not in output.splitlines()[0]

    def test_baselined_findings_appear_in_json(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rpr101_trigger.py")
        run_cli("lint", fixture, "--write-baseline", str(baseline))
        _, output = run_cli(
            "lint", fixture, "--baseline", str(baseline),
            "--format", "json",
        )
        payload = json.loads(output)
        assert payload["ok"] is True
        assert len(payload["baselined"]) == 1
        assert payload["baselined"][0]["code"] == "RPR101"

    def test_missing_baseline_is_exit_2(self):
        code, output = run_cli(
            "lint", str(FIXTURES / "rpr101_clean.py"),
            "--baseline", "no/such/baseline.json",
        )
        assert code == 2
        assert "error" in output

    def test_malformed_baseline_is_exit_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}', encoding="utf-8")
        code, output = run_cli(
            "lint", str(FIXTURES / "rpr101_clean.py"),
            "--baseline", str(bad),
        )
        assert code == 2
        assert "baseline" in output

    def test_committed_baseline_is_empty_and_tree_is_clean(self):
        committed = Path(__file__).parent.parent / "lint-baseline.json"
        data = json.loads(committed.read_text(encoding="utf-8"))
        assert data["schema"] == "repro-lint-baseline/1"
        assert data["entries"] == {}
