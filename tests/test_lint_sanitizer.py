"""Tests for the runtime simulation sanitizer (repro.lint.sanitizer)."""

import numpy as np
import pytest

from repro.cloud.queue import MessageQueue
from repro.lint.sanitizer import (
    SanitizedEnvironment,
    SanitizerError,
)
from repro.sim.engine import Environment, make_environment


def make_queue(env, **kwargs):
    defaults = dict(
        rng=np.random.default_rng(11),
        visibility_timeout_s=10.0,
        request_latency_s=0.010,
        latency_sigma=0.0,
        propagation_delay_s=0.0,
        miss_probability=0.0,
    )
    defaults.update(kwargs)
    return MessageQueue(env, "tasks", **defaults)


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestFactory:
    def test_default_is_plain_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        env = make_environment()
        assert type(env) is Environment

    def test_env_var_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        env = make_environment()
        assert isinstance(env, SanitizedEnvironment)

    def test_explicit_flag_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert type(make_environment(sanitize=False)) is Environment
        monkeypatch.delenv("REPRO_SANITIZE")
        assert isinstance(
            make_environment(sanitize=True), SanitizedEnvironment
        )


class TestTrace:
    def test_trace_records_every_fired_event(self):
        env = SanitizedEnvironment()

        def ticker(env):
            for _ in range(3):
                yield env.timeout(1.0)

        env.process(ticker(env), name="ticker")
        env.run()
        assert env.trace
        assert any("ticker" in line for line in env.trace)
        report = env.sanitizer_report()
        assert report.events_fired == len(env.trace)

    def test_trace_is_deterministic_across_runs(self):
        def play():
            env = SanitizedEnvironment()
            q = make_queue(env)

            def producer(env):
                for i in range(5):
                    yield env.process(q.send(i))

            def consumer(env):
                got = 0
                while got < 5:
                    msg = yield env.process(q.receive())
                    if msg is None:
                        yield env.timeout(0.1)
                        continue
                    yield env.process(q.delete(msg))
                    got += 1

            env.process(producer(env), name="producer")
            done = env.process(consumer(env), name="consumer")
            env.run(until=done)
            return env.trace_text()

        assert play() == play()

    def test_same_time_ties_counted(self):
        env = SanitizedEnvironment()

        def twin(env):
            yield env.timeout(1.0)

        env.process(twin(env), name="a")
        env.process(twin(env), name="b")
        env.run()
        assert env.same_time_ties > 0


class TestViolations:
    def test_reenqueue_of_processed_event_raises(self):
        env = SanitizedEnvironment(strict=True)
        event = env.event()
        event.succeed("x")
        env.run()
        assert event.processed
        with pytest.raises(SanitizerError):
            env._enqueue(event, 0.0)

    def test_non_strict_mode_records_instead(self):
        env = SanitizedEnvironment(strict=False)
        event = env.event()
        event.succeed("x")
        env.run()
        env._enqueue(event, 0.0)
        env.run()
        report = env.sanitizer_report()
        assert report.double_triggers
        assert report.issues

    def test_pending_process_reported(self):
        env = SanitizedEnvironment()

        def waiter(env):
            yield env.event()  # nobody will ever trigger this

        env.process(waiter(env), name="stuck")
        env.run()
        report = env.sanitizer_report()
        assert any("stuck" in finding for finding in report.pending_processes)

    def test_finished_processes_not_reported(self):
        env = SanitizedEnvironment()

        def quick(env):
            yield env.timeout(1.0)

        env.process(quick(env), name="quick")
        env.run()
        assert env.sanitizer_report().pending_processes == []


class TestQueueLeakDetection:
    def test_queue_self_registers_on_sanitized_env(self):
        env = SanitizedEnvironment()
        q = make_queue(env)
        assert q in env._queues

    def test_stale_receipt_without_reaccounting_is_a_leak(self):
        env = SanitizedEnvironment()
        q = make_queue(env, visibility_timeout_s=5.0)
        drive(env, q.send("t"))
        msg = drive(env, q.receive())
        assert msg is not None
        # Let the visibility timeout lapse with no further receives:
        # nobody runs the reappearance accounting, the message is lost
        # to consumers — the at-least-once story is broken.
        env.run(until=env.now + 60.0)
        report = env.sanitizer_report()
        assert len(report.queue_leaks) == 1
        assert "went stale" in report.queue_leaks[0]

    def test_reappearance_accounting_clears_the_leak(self):
        env = SanitizedEnvironment()
        q = make_queue(env, visibility_timeout_s=5.0)
        drive(env, q.send("t"))
        drive(env, q.receive())
        env.run(until=env.now + 60.0)
        msg = drive(env, q.receive())  # promotes the reappeared message
        assert msg is not None
        drive(env, q.delete(msg))
        assert env.sanitizer_report().queue_leaks == []

    def test_clean_consume_has_no_leaks(self):
        env = SanitizedEnvironment()
        q = make_queue(env)
        drive(env, q.send("t"))
        msg = drive(env, q.receive())
        drive(env, q.delete(msg))
        report = env.sanitizer_report()
        assert report.queue_leaks == []
        assert report.issues == []


class TestPytestIntegration:
    def test_sanitized_env_fixture(self, sanitized_env):
        assert isinstance(sanitized_env, SanitizedEnvironment)

        def proc(env):
            yield env.timeout(1.0)

        sanitized_env.process(proc(sanitized_env), name="p")
        sanitized_env.run()
        assert sanitized_env.now == pytest.approx(1.0)

    def test_report_summary_mentions_counts(self):
        env = SanitizedEnvironment()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env), name="p")
        env.run()
        summary = env.sanitizer_report().summary()
        assert "events fired" in summary
        assert "same-time ties" in summary
