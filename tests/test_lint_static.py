"""Tests for the static determinism linter (repro.lint)."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import all_rules, lint_file, lint_paths

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

# fixture file -> the one rule code it must trip
FIXTURE_CODES = {
    "sim/rpr001_wall_clock.py": "RPR001",
    "rpr002_global_rng.py": "RPR002",
    "rpr003_set_iteration.py": "RPR003",
    "rpr004_mutable_default.py": "RPR004",
    "rpr005_float_time_eq.py": "RPR005",
    "rpr006_heap_tiebreak.py": "RPR006",
    "sim/rpr007_span_wall_clock.py": "RPR007",
}


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFixtures:
    @pytest.mark.parametrize("fixture,code", sorted(FIXTURE_CODES.items()))
    def test_fixture_trips_its_rule_via_cli(self, fixture, code):
        exit_code, output = run_cli(
            "lint", str(FIXTURES / fixture), "--format", "json"
        )
        assert exit_code == 1
        payload = json.loads(output)
        assert not payload["ok"]
        codes = {v["code"] for v in payload["violations"]}
        assert code in codes

    @pytest.mark.parametrize("fixture,code", sorted(FIXTURE_CODES.items()))
    def test_fixture_violations_carry_locations(self, fixture, code):
        result = lint_file(FIXTURES / fixture)
        matching = [v for v in result.violations if v.code == code]
        assert matching
        assert all(v.line > 0 for v in matching)

    def test_wall_clock_fixture_finds_all_three_flavours(self):
        result = lint_file(FIXTURES / "sim" / "rpr001_wall_clock.py")
        messages = " ".join(v.message for v in result.violations)
        assert "time.time" in messages
        assert "time.perf_counter" in messages
        assert "datetime.datetime.now" in messages

    def test_clean_module_passes(self):
        result = lint_file(FIXTURES / "clean_module.py")
        assert result.ok
        assert result.violations == []

    def test_noqa_suppression(self):
        result = lint_file(FIXTURES / "suppressed_noqa.py")
        assert result.ok
        suppressed = {v.code for v in result.suppressed}
        assert suppressed == {"RPR002", "RPR004"}


class TestScoping:
    def test_wall_clock_rule_only_applies_to_sim_paths(self):
        (rule,) = [r for r in all_rules() if r.code == "RPR001"]
        assert rule.applies_to(Path("src/repro/sim/engine.py"))
        assert rule.applies_to(Path("src/repro/cloud/queue.py"))
        assert not rule.applies_to(Path("src/repro/core/backends.py"))

    def test_global_rules_apply_everywhere(self):
        (rule,) = [r for r in all_rules() if r.code == "RPR004"]
        assert rule.applies_to(Path("anything/at/all.py"))


class TestCliSurface:
    def test_src_repro_is_clean(self):
        exit_code, output = run_cli("lint", str(SRC))
        assert exit_code == 0, output
        assert "0 violations" in output

    def test_select_and_ignore(self):
        result = lint_paths(
            [FIXTURES / "rpr002_global_rng.py"], select=["RPR006"]
        )
        assert result.ok
        result = lint_paths(
            [FIXTURES / "rpr002_global_rng.py"], ignore=["RPR002"]
        )
        assert result.ok

    def test_list_rules(self):
        exit_code, output = run_cli("lint", "--list-rules")
        assert exit_code == 0
        for code in FIXTURE_CODES.values():
            assert code in output

    def test_missing_path_errors(self):
        exit_code, output = run_cli("lint", "no/such/path.py")
        assert exit_code == 2
        assert "error" in output

    def test_syntax_error_reports_rpr000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def incomplete(:\n")
        result = lint_paths([bad])
        assert not result.ok
        assert result.violations[0].code == "RPR000"

    def test_json_output_is_stable(self):
        _, first = run_cli("lint", str(FIXTURES), "--format", "json")
        _, second = run_cli("lint", str(FIXTURES), "--format", "json")
        assert first == second
