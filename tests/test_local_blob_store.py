"""Tests for the directory-backed blob store and store-mode execution."""

import threading

import pytest

from repro.apps.executables import Cap3Executable
from repro.apps.fasta import parse_fasta
from repro.classiccloud import LocalClassicCloud
from repro.classiccloud.localstore import LocalBlobStore
from repro.core.task import TaskSpec
from repro.workloads.genome import generate_read_records
from repro.apps.fasta import write_fasta

import io


class TestLocalBlobStore:
    def test_roundtrip_bytes(self, tmp_path):
        store = LocalBlobStore(tmp_path / "blobs")
        store.put_bytes("in/task.fa", b">r1\nACGT\n")
        destination = store.get("in/task.fa", tmp_path / "dl" / "task.fa")
        assert destination.read_bytes() == b">r1\nACGT\n"
        assert store.stats == {"puts": 1, "gets": 1, "deletes": 0}

    def test_put_file(self, tmp_path):
        source = tmp_path / "src.txt"
        source.write_text("hello")
        store = LocalBlobStore(tmp_path / "blobs")
        store.put("data/src.txt", source)
        assert store.exists("data/src.txt")
        assert store.size("data/src.txt") == 5

    def test_get_missing_raises(self, tmp_path):
        store = LocalBlobStore(tmp_path / "blobs")
        with pytest.raises(FileNotFoundError):
            store.get("nope", tmp_path / "out")

    def test_delete_idempotent(self, tmp_path):
        store = LocalBlobStore(tmp_path / "blobs")
        store.put_bytes("k", b"x")
        store.delete("k")
        store.delete("k")
        assert not store.exists("k")

    def test_list_keys_with_prefix(self, tmp_path):
        store = LocalBlobStore(tmp_path / "blobs")
        for key in ("in/a", "in/b", "out/c"):
            store.put_bytes(key, b"x")
        assert store.list_keys("in/") == ["in/a", "in/b"]
        assert store.list_keys() == ["in/a", "in/b", "out/c"]

    def test_rejects_traversal_keys(self, tmp_path):
        store = LocalBlobStore(tmp_path / "blobs")
        with pytest.raises(ValueError):
            store.put_bytes("../escape", b"x")
        with pytest.raises(ValueError):
            store.put_bytes("", b"x")

    def test_concurrent_overwrites_never_partial(self, tmp_path):
        """Atomic uploads: readers see a whole old or whole new object."""
        store = LocalBlobStore(tmp_path / "blobs")
        payload_a = b"A" * 100_000
        payload_b = b"B" * 100_000
        store.put_bytes("contested", payload_a)
        stop = threading.Event()
        bad: list[bytes] = []

        def writer():
            toggle = False
            while not stop.is_set():
                store.put_bytes("contested", payload_b if toggle else payload_a)
                toggle = not toggle

        def reader():
            while not stop.is_set():
                destination = tmp_path / "read" / "contested"
                store.get("contested", destination)
                data = destination.read_bytes()
                if data not in (payload_a, payload_b):
                    bad.append(data)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert bad == []

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            LocalBlobStore(tmp_path, transfer_delay_s=-1)


class TestStoreModeExecution:
    def make_store_tasks(self, tmp_path, n_files=4):
        store = LocalBlobStore(tmp_path / "cloud")
        tasks = []
        for i in range(n_files):
            records = generate_read_records(
                10, read_length=120, id_prefix=f"f{i}_r"
            )
            buffer = io.StringIO()
            text = write_fasta(records)
            del buffer
            store.put_bytes(f"in/{i:03d}.fa", text.encode("ascii"))
            tasks.append(
                TaskSpec(
                    task_id=f"task-{i:03d}",
                    input_key=f"in/{i:03d}.fa",
                    output_key=f"out/{i:03d}.fa",
                    input_size=len(text),
                    output_size=1024,
                    work_units=10.0,
                )
            )
        return store, tasks

    def test_download_execute_upload_cycle(self, tmp_path):
        store, tasks = self.make_store_tasks(tmp_path)
        runner = LocalClassicCloud(n_workers=2, store=store)
        result = runner.run(Cap3Executable(), tasks)
        assert len(result.completed_task_ids) == 4
        # Outputs landed in the store, not on arbitrary paths.
        assert store.list_keys("out/") == [t.output_key for t in tasks]
        for task in tasks:
            local = store.get(task.output_key, tmp_path / "check" / task.task_id)
            records = list(parse_fasta(io.StringIO(local.read_text())))
            assert records
        # Every task: one download of the input, one upload of the output.
        assert store.stats["gets"] >= 4 + 4  # +4 for the checks above
        assert store.stats["puts"] >= 4 + 4  # +4 initial staging

    def test_store_mode_crash_recovery(self, tmp_path):
        store, tasks = self.make_store_tasks(tmp_path, n_files=5)
        runner = LocalClassicCloud(
            n_workers=3,
            store=store,
            visibility_timeout_s=0.2,
            crash_worker_on_receive={0: 1},
            timeout_s=60.0,
        )
        result = runner.run(Cap3Executable(), tasks)
        assert len(result.completed_task_ids) == 5
        assert len(store.list_keys("out/")) == 5
