"""The three real runtimes produce byte-identical outputs.

Classic Cloud (threads + visibility-timeout queue), MiniHadoop (thread
pool over the filename input format) and LocalDryadLINQ (static
partitions) all schedule the same deterministic executables — so for the
same inputs their outputs must match exactly, whatever the scheduling.
"""

import shutil

import pytest

from repro.apps.executables import Cap3Executable
from repro.classiccloud import LocalClassicCloud
from repro.core.task import TaskSpec
from repro.dryad import LocalDryadLinq
from repro.hadoop import MiniHadoop
from repro.workloads.genome import write_cap3_workload


@pytest.fixture
def shared_inputs(tmp_path):
    """One input set, copied per runtime so paths don't collide."""
    base = write_cap3_workload(
        tmp_path / "base", n_files=6, reads_per_file=12, replicated=False,
        seed=31,
    )
    return tmp_path, base


def retarget(tasks, out_dir):
    return [
        TaskSpec(
            task_id=t.task_id,
            input_key=t.input_key,
            output_key=str(out_dir / f"{i:03d}.fa"),
            input_size=t.input_size,
            output_size=t.output_size,
            work_units=t.work_units,
        )
        for i, t in enumerate(tasks)
    ]


def test_three_runtimes_identical_outputs(shared_inputs):
    tmp_path, base_tasks = shared_inputs
    executable = Cap3Executable()

    cc_tasks = retarget(base_tasks, tmp_path / "cc_out")
    (tmp_path / "cc_out").mkdir()
    LocalClassicCloud(n_workers=3).run(executable, cc_tasks)

    dryad_tasks = retarget(base_tasks, tmp_path / "dryad_out")
    LocalDryadLinq(n_nodes=2, workers_per_node=2).run(executable, dryad_tasks)

    # MiniHadoop maps a directory; point it at the shared inputs.
    input_dir = tmp_path / "base" / "in"
    hadoop_result = MiniHadoop(n_slots=3).run_job(
        executable, input_dir, tmp_path / "hadoop_out", "*.fa"
    )
    assert hadoop_result.n_tasks == 6

    for i, base in enumerate(base_tasks):
        cc_bytes = open(cc_tasks[i].output_key, "rb").read()
        dryad_bytes = open(dryad_tasks[i].output_key, "rb").read()
        input_name = base.input_key.rsplit("/", 1)[-1]
        hadoop_bytes = open(tmp_path / "hadoop_out" / input_name, "rb").read()
        assert cc_bytes == dryad_bytes == hadoop_bytes
        assert cc_bytes  # non-empty
