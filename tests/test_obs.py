"""Unit tests for repro.obs: tracer, metrics, ambient context."""

import threading

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Instant,
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    current,
    observe,
)


class TestTracer:
    def test_add_records_sim_span(self):
        tracer = Tracer(label="t")
        tracer.add("task.compute", track="w0", start=1.0, end=3.5, task_id="t1")
        (span,) = tracer.spans
        assert span == Span(
            name="task.compute", track="w0", start=1.0, end=3.5,
            domain="sim", args={"task_id": "t1"},
        )
        assert span.duration == 2.5
        assert len(tracer) == 1

    def test_span_context_manager_uses_wall_domain(self):
        tracer = Tracer()
        with tracer.span("cache.lookup", track="host", label="x"):
            pass
        (span,) = tracer.spans
        assert span.domain == "wall"
        assert span.end >= span.start >= 0.0
        assert span.args == {"label": "x"}

    def test_instant_with_explicit_sim_timestamp(self):
        tracer = Tracer()
        tracer.instant("scheduler.dispatch", track="v0", ts=7.0, node=2)
        (instant,) = tracer.instants
        assert instant == Instant(
            name="scheduler.dispatch", track="v0", ts=7.0,
            domain="sim", args={"node": 2},
        )

    def test_instant_without_timestamp_reads_wall_clock(self):
        tracer = Tracer()
        tracer.instant("tick")
        (instant,) = tracer.instants
        assert instant.domain == "wall"
        assert instant.ts >= 0.0

    def test_totals_aggregates_by_name(self):
        tracer = Tracer()
        tracer.add("task.compute", track="w0", start=0.0, end=2.0)
        tracer.add("task.compute", track="w1", start=1.0, end=4.0)
        tracer.add("task.upload", track="w0", start=2.0, end=2.5)
        assert tracer.totals() == {
            "task.compute": pytest.approx(5.0),
            "task.upload": pytest.approx(0.5),
        }
        assert tracer.totals("task.up") == {"task.upload": pytest.approx(0.5)}

    def test_thread_safe_appends(self):
        tracer = Tracer()

        def record():
            for i in range(200):
                tracer.add("s", track="t", start=float(i), end=float(i) + 1)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans) == 800


class TestNullTracer:
    def test_every_operation_is_a_noop(self):
        NULL_TRACER.add("s", track="t", start=0.0, end=1.0)
        NULL_TRACER.instant("i", ts=0.0)
        with NULL_TRACER.span("s"):
            pass
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.instants == []
        assert NULL_TRACER.totals() == {}

    def test_shared_span_handle_is_reentrant(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(5.0)
        registry.gauge("g").dec(1.5)
        for value in (1.0, 3.0, 2.0):
            registry.histogram("h").observe(value)
        data = registry.to_dict()
        assert data["c"] == 3.0
        assert data["g"] == 3.5
        hist = data["h"]
        assert hist["count"] == 3
        assert hist["total"] == 6.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert hist["mean"] == 2.0
        # Percentiles are bucket approximations: within 5% of the exact
        # rank values, and always clamped inside [min, max].
        assert abs(hist["p50"] - 2.0) <= 0.1
        assert hist["p95"] == 3.0
        assert hist["p99"] == 3.0
        assert len(registry) == 3

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_empty_histogram_exports_none_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert registry.to_dict()["h"] == {
            "count": 0, "total": 0.0, "min": None, "max": None, "mean": 0.0,
            "p50": None, "p95": None, "p99": None,
        }

    def test_null_registry_is_inert(self):
        NULL_METRICS.counter("a").inc()
        NULL_METRICS.gauge("b").set(9.0)
        NULL_METRICS.histogram("c").observe(1.0)
        assert NULL_METRICS.to_dict() == {}
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("zzz")


class TestContext:
    def test_default_is_the_null_bundle(self):
        obs = current()
        assert not obs.enabled
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is NULL_METRICS

    def test_observe_installs_and_restores(self):
        with observe(label="run") as obs:
            assert current() is obs
            assert obs.enabled
            assert obs.tracer.label == "run"
        assert not current().enabled

    def test_observe_nests(self):
        with observe() as outer:
            with observe() as inner:
                assert current() is inner
            assert current() is outer

    def test_explicit_bundle_is_used_verbatim(self):
        bundle = Observability.make(label="mine")
        with observe(bundle) as obs:
            assert obs is bundle
            current().tracer.add("s", track="t", start=0.0, end=1.0)
        assert len(bundle.tracer.spans) == 1

    def test_context_is_thread_local(self):
        seen = {}

        def probe():
            seen["enabled"] = current().enabled

        with observe():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["enabled"] is False
