"""Chrome-trace export: schema, phase agreement, backend coverage.

The acceptance property for the observability layer: a traced
ClassicCloud Cap3 run exports a valid Chrome ``trace_event`` JSON whose
per-phase totals agree with :func:`repro.core.analysis.phase_breakdown`
computed from the very same run's task records.
"""

import json

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.analysis import phase_breakdown
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.task import RunResult
from repro.obs import (
    Tracer,
    chrome_trace,
    observe,
    phase_fractions,
    summarize_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.genome import cap3_task_specs


def traced_cap3_run():
    app = get_application("cap3")
    tasks = cap3_task_specs(24, reads_per_file=200)
    backend = make_backend(
        "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=7
    )
    with observe(label="cap3-ec2") as obs:
        result = backend.run(app, tasks)
    return result, obs


@pytest.fixture(scope="module")
def traced_run():
    return traced_cap3_run()


class TestAcceptance:
    def test_export_is_valid_chrome_trace(self, traced_run, tmp_path):
        _, obs = traced_run
        path = tmp_path / "trace.json"
        document = write_chrome_trace(path, obs)
        assert validate_chrome_trace(document) == []
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(reloaded) == []
        assert reloaded == document
        assert document["otherData"]["schema"] == "repro-trace-v1"
        assert document["otherData"]["label"] == "cap3-ec2"

    def test_phase_totals_agree_with_analysis(self, traced_run):
        result, obs = traced_run
        document = chrome_trace(obs.tracer, obs.metrics)
        from_trace = phase_fractions(document)
        from_records = phase_breakdown(result)
        assert set(from_trace) == set(from_records)
        for phase, fraction in from_records.items():
            assert from_trace[phase] == pytest.approx(fraction, abs=1e-9)

    def test_queue_stats_surface_and_round_trip(self, traced_run):
        result, _ = traced_run
        stats = result.queue_stats
        assert stats is not None
        assert stats["requests"] > 0
        assert stats["requests"] >= stats["empty_receives"]
        assert stats["sent"] == 24
        assert stats["reappearances"] == 0  # no faults injected
        restored = RunResult.from_dict(result.to_dict())
        assert restored.queue_stats == stats
        assert restored.trace_ref == result.trace_ref

    def test_trace_ref_round_trips(self):
        result = RunResult(
            backend="x", app_name="a", n_tasks=0, makespan_seconds=1.0,
            trace_ref="traces/run42.json",
        )
        restored = RunResult.from_dict(result.to_dict())
        assert restored.trace_ref == "traces/run42.json"
        untraced = RunResult.from_dict(
            RunResult(
                backend="x", app_name="a", n_tasks=0, makespan_seconds=1.0
            ).to_dict()
        )
        assert untraced.trace_ref is None
        assert untraced.queue_stats is None

    def test_metrics_embedded_in_export(self, traced_run):
        _, obs = traced_run
        document = chrome_trace(obs.tracer, obs.metrics)
        metrics = document["otherData"]["metrics"]
        assert metrics["sim.events"] > 0
        assert metrics["queue.tasks.requests"] > 0
        busy = [v for k, v in metrics.items() if ".busy_fraction" in k]
        assert busy and all(0.0 <= value <= 1.0 for value in busy)

    def test_summary_text(self, traced_run):
        _, obs = traced_run
        document = chrome_trace(obs.tracer, obs.metrics)
        text = summarize_chrome_trace(document)
        assert "trace summary (cap3-ec2)" in text
        assert "task.compute" in text
        assert "phase breakdown" in text
        assert "compute" in text


class TestBackendCoverage:
    def _trace_for(self, backend_name, **kwargs):
        app = get_application("cap3")
        tasks = cap3_task_specs(8, reads_per_file=150)
        backend = make_backend(backend_name, **kwargs)
        with observe(label=backend_name) as obs:
            backend.run(app, tasks)
        return obs

    def test_hadoop_emits_dispatch_and_phases(self):
        from repro.cluster import get_cluster

        obs = self._trace_for("hadoop", cluster=get_cluster("cap3-baremetal"))
        names = {span.name for span in obs.tracer.spans}
        assert {"task.download", "task.compute", "task.upload"} <= names
        assert any(
            i.name == "scheduler.dispatch" for i in obs.tracer.instants
        )
        assert obs.metrics.to_dict()["scheduler.dispatches"] >= 8

    def test_dryad_emits_dispatch_and_phases(self):
        from repro.cluster import get_cluster

        obs = self._trace_for(
            "dryadlinq", cluster=get_cluster("cap3-baremetal-windows")
        )
        names = {span.name for span in obs.tracer.spans}
        assert {"task.download", "task.compute", "task.upload"} <= names
        assert any(
            i.name == "scheduler.dispatch" for i in obs.tracer.instants
        )

    def test_twister_emits_iteration_spans(self):
        from repro.twister.simulator import (
            TwisterAzureSimulator,
            TwisterSimConfig,
        )

        sim = TwisterAzureSimulator(
            TwisterSimConfig(n_workers=4, n_iterations=3)
        )
        with observe(label="twister") as obs:
            sim.run("twister")
        names = {span.name for span in obs.tracer.spans}
        assert "twister.iteration" in names
        assert "task.compute" in names
        iteration_spans = [
            s for s in obs.tracer.spans if s.name == "twister.iteration"
        ]
        assert len(iteration_spans) == 3

    def test_untraced_run_records_nothing(self):
        app = get_application("cap3")
        tasks = cap3_task_specs(4, reads_per_file=150)
        backend = make_backend(
            "ec2", n_instances=1, fault_plan=FaultPlan.none(), seed=1
        )
        result = backend.run(app, tasks)
        # queue_stats ride on the RunResult even without observe();
        # the obs layer itself stays silent.
        assert result.queue_stats is not None
        from repro.obs import current

        assert len(current().tracer) == 0


class TestSanitizerIntegration:
    def test_kernel_instants_flow_into_ambient_tracer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        app = get_application("cap3")
        tasks = cap3_task_specs(4, reads_per_file=150)
        backend = make_backend(
            "ec2", n_instances=1, fault_plan=FaultPlan.none(), seed=1
        )
        with observe(label="sanitized") as obs:
            backend.run(app, tasks)
        kernel = [i for i in obs.tracer.instants if i.track == "kernel"]
        assert kernel
        assert all(i.domain == "sim" for i in kernel)
        document = chrome_trace(obs.tracer)
        assert validate_chrome_trace(document) == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"displayTimeUnit": "ms"}) != []

    def test_rejects_bad_events(self):
        bad = {
            "traceEvents": [
                {"name": 3, "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
                {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0,
                 "dur": -4},
                {"name": "a", "ph": "X", "pid": "p", "tid": 1, "ts": 0,
                 "dur": 1},
                "not-an-object",
            ]
        }
        errors = validate_chrome_trace(bad)
        assert len(errors) == 5

    def test_accepts_minimal_valid_document(self):
        tracer = Tracer(label="ok")
        tracer.add("s", track="t", start=0.0, end=1.0)
        tracer.instant("i", track="t", ts=0.5)
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_phase_fractions_without_task_spans_is_empty(self):
        tracer = Tracer()
        tracer.add("cache.lookup", track="host", start=0.0, end=1.0)
        assert phase_fractions(chrome_trace(tracer)) == {}

    def test_phase_fractions_empty_trace(self):
        # Regression: an empty trace document used to raise ValueError.
        assert phase_fractions({"traceEvents": []}) == {}

    def test_summarize_metadata_only_trace(self):
        # Regression: a trace holding only process/thread-name metadata
        # (no spans at all) must summarize without crashing.
        trace = chrome_trace(Tracer(label="idle"))
        assert phase_fractions(trace) == {}
        text = summarize_chrome_trace(trace)
        assert "idle" in text
