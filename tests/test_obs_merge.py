"""Merged multi-process traces: worker capture, adoption, export.

The tentpole acceptance property: a traced ``jobs=2`` Cap3 sweep over
the Fig 3/4 EC2 shapes exports **one** valid Chrome trace containing
spans from at least two distinct worker processes, each under its own
synthetic pid with ``process_name`` metadata, and the per-point phase
fractions reconstructed from that merged trace agree with the
``phase_*_s`` totals the workers measured, to 1e-9.
"""

import json

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.obs import (
    Observability,
    chrome_trace,
    observe,
    phase_fractions_by_point,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.context import worker_payload
from repro.obs.export import _WORKER_PID_BASE
from repro.sweep.cache import ResultCache
from repro.sweep.pool import SweepPool
from repro.sweep.runner import run_points
from repro.workloads.genome import cap3_task_specs

_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _specs(seed=11, n_files=16):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files, reads_per_file=200)
    from repro.sweep.points import point_for

    specs = []
    for itype, n, w in _SHAPES:
        backend = make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
            fault_plan=FaultPlan.none(),
            seed=seed,
        )
        specs.append(point_for(app, backend, tasks))
    return specs


@pytest.fixture(scope="module")
def merged_run():
    """One traced jobs=2 sweep through a private two-worker pool."""
    specs = _specs()
    with SweepPool(2) as pool:
        with observe(label="merged-sweep") as obs:
            results = run_points(specs, jobs=2, pool=pool)
    return specs, results, obs


class TestMergedTrace:
    def test_at_least_two_worker_processes_merged(self, merged_run):
        _, _, obs = merged_run
        os_pids = {capture.os_pid for capture in obs.workers}
        assert len(obs.workers) == 4  # one capture per executed point
        assert len(os_pids) >= 2

    def test_export_is_one_valid_trace(self, merged_run, tmp_path):
        _, _, obs = merged_run
        document = chrome_trace(
            obs.tracer, obs.metrics,
            timeline=obs.timeline, workers=obs.workers,
        )
        assert validate_chrome_trace(document) == []
        path = tmp_path / "merged.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert validate_chrome_trace(
            json.loads(path.read_text(encoding="utf-8"))
        ) == []

    def test_worker_pids_and_process_name_metadata(self, merged_run):
        _, _, obs = merged_run
        document = chrome_trace(obs.tracer, workers=obs.workers)
        events = document["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        worker_pids = {
            e["pid"]
            for e in events
            if e.get("ph") == "X" and e["pid"] >= _WORKER_PID_BASE
        }
        assert len(worker_pids) >= 2
        for pid in worker_pids:
            assert pid in names
            assert names[pid].startswith("worker ")

    def test_per_point_phase_agreement(self, merged_run):
        _, results, obs = merged_run
        document = chrome_trace(obs.tracer, workers=obs.workers)
        by_point = phase_fractions_by_point(document)
        for result in results:
            down = result.extras["phase_download_s"]
            comp = result.extras["phase_compute_s"]
            up = result.extras["phase_upload_s"]
            total = down + comp + up
            assert total > 0
            from_trace = by_point[result.label]
            assert from_trace["download"] == pytest.approx(
                down / total, abs=1e-9
            )
            assert from_trace["compute"] == pytest.approx(
                comp / total, abs=1e-9
            )
            assert from_trace["upload"] == pytest.approx(up / total, abs=1e-9)

    def test_worker_metrics_merge_into_parent(self, merged_run):
        _, _, obs = merged_run
        merged = obs.metrics.to_dict()
        # Queue traffic happens only inside the workers' simulations;
        # seeing it in the parent registry proves the merge.
        assert merged.get("queue.tasks.requests", 0) > 0
        assert merged.get("sim.events", 0) > 0

    def test_summary_reports_worker_processes(self, merged_run):
        _, _, obs = merged_run
        document = chrome_trace(obs.tracer, workers=obs.workers)
        text = summarize_chrome_trace(document)
        assert "worker processes:" in text


class TestSyntheticAdoption:
    """Deterministic two-payload merge, no real processes involved."""

    def _payload(self, fake_pid, label):
        worker = Observability.make(label=label)
        worker.tracer.add(
            "task.compute", track="w0", start=0.0, end=2.0, point=label
        )
        worker.tracer.add(
            "task.download", track="w0", start=2.0, end=2.5, point=label
        )
        worker.metrics.counter("sweep.points_run").inc()
        worker.timeline.sample("queue.tasks.depth", 0.5, 3.0)
        payload = worker_payload(worker, label=label)
        payload["os_pid"] = fake_pid  # two processes, simulated
        return payload

    def test_two_payloads_get_distinct_pids(self):
        obs = Observability.make(label="parent")
        obs.adopt_worker(self._payload(4001, "point-a"))
        obs.adopt_worker(self._payload(4002, "point-b"))
        assert [c.os_pid for c in obs.workers] == [4001, 4002]
        assert obs.metrics.to_dict()["sweep.points_run"] == 2.0

        document = chrome_trace(
            obs.tracer, obs.metrics,
            timeline=obs.timeline, workers=obs.workers,
        )
        assert validate_chrome_trace(document) == []
        spans = [
            e for e in document["traceEvents"] if e.get("ph") == "X"
        ]
        pids = {e["pid"] for e in spans}
        assert len(pids & set(range(_WORKER_PID_BASE, 100))) == 2
        worker_meta = document["otherData"]["workers"]
        assert {w["os_pid"] for w in worker_meta} == {4001, 4002}
        by_point = phase_fractions_by_point(document)
        assert by_point["point-a"]["compute"] == pytest.approx(0.8)
        assert by_point["point-a"]["download"] == pytest.approx(0.2)

    def test_null_bundle_refuses_adoption(self):
        from repro.obs.context import current

        null = current()  # the shared null bundle outside observe()
        assert null.adopt_worker(self._payload(4003, "x")) is None
        assert null.workers == []


class TestCacheHitInstants:
    def test_warm_rerun_marks_hits_on_parent_track(self, tmp_path):
        specs = _specs(seed=23, n_files=8)
        cache = ResultCache(tmp_path / "cache")
        run_points(specs, jobs=1, cache=cache)  # cold fill
        with observe(label="warm") as obs:
            warm = run_points(specs, jobs=1, cache=cache)
        assert len(warm) == len(specs)
        hits = [
            i for i in obs.tracer.instants if i.name == "sweep.cache_hit"
        ]
        assert len(hits) == len(specs)
        assert {h.args["label"] for h in hits} == {s.label for s in specs}
        # Cache hits never reach a worker: nothing to adopt.
        assert obs.workers == []
