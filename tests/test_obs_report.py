"""The ``repro report`` reporter: HTML rendering, bench deltas, CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.obs import (
    bench_compare,
    chrome_trace,
    format_bench_compare,
    observe,
    render_report,
    write_report,
)
from repro.workloads.genome import cap3_task_specs


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def traced():
    app = get_application("cap3")
    tasks = cap3_task_specs(8, reads_per_file=150)
    backend = make_backend(
        "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=7
    )
    with observe(label="report-run") as obs:
        result = backend.run(app, tasks)
    document = chrome_trace(
        obs.tracer, obs.metrics, timeline=obs.timeline
    )
    return document, result


def _bench_doc(events_per_s, serial_s=2.0, parallel_s=1.0):
    return {
        "kernel": {
            "L": {"events_per_s": events_per_s, "best_s": 0.1},
        },
        "sweeps": {
            "cap3": {"serial_s": serial_s, "parallel_s": parallel_s},
        },
    }


class TestBenchCompare:
    def test_regression_and_improvement_flags(self):
        old = _bench_doc(1000.0, serial_s=2.0)
        new = _bench_doc(800.0, serial_s=1.0)  # kernel -20%, serial -50%
        rows = {r["metric"]: r for r in bench_compare(old, new)}
        assert rows["kernel.L.events_per_s"]["status"] == "regression"
        assert rows["sweep.cap3.serial_s"]["status"] == "improved"
        assert rows["sweep.cap3.parallel_s"]["status"] == "ok"

    def test_lower_better_regression(self):
        old = _bench_doc(1000.0, parallel_s=1.0)
        new = _bench_doc(1000.0, parallel_s=1.5)  # 50% slower
        rows = {r["metric"]: r for r in bench_compare(old, new)}
        assert rows["sweep.cap3.parallel_s"]["status"] == "regression"
        assert rows["sweep.cap3.parallel_s"]["delta"] == pytest.approx(0.5)

    def test_only_shared_fields_compared(self):
        old = {"kernel": {"L": {"events_per_s": 10.0}}}
        new = {
            "kernel": {"L": {"events_per_s": 10.0}, "XL": {"events_per_s": 5.0}},
            "sweeps": {"cap3": {"serial_s": 1.0}},
        }
        metrics = [r["metric"] for r in bench_compare(old, new)]
        assert metrics == ["kernel.L.events_per_s"]

    def test_tolerance_gates_flags(self):
        old = _bench_doc(1000.0)
        new = _bench_doc(950.0)  # -5%
        rows = {r["metric"]: r for r in bench_compare(old, new, tolerance=0.10)}
        assert rows["kernel.L.events_per_s"]["status"] == "ok"
        rows = {r["metric"]: r for r in bench_compare(old, new, tolerance=0.01)}
        assert rows["kernel.L.events_per_s"]["status"] == "regression"

    def test_format_marks_regressions(self):
        text = format_bench_compare(
            bench_compare(_bench_doc(1000.0), _bench_doc(500.0)),
            "OLD", "NEW",
        )
        assert "REGRESSION" in text
        assert "kernel.L.events_per_s" in text
        assert "OLD" in text and "NEW" in text

    def test_real_bench_history_compares(self):
        old = json.loads(open("BENCH_2.json").read())
        new = json.loads(open("BENCH_3.json").read())
        rows = bench_compare(old, new)
        assert rows, "BENCH_2 vs BENCH_3 must share metrics"
        assert all(r["status"] in ("ok", "regression", "improved") for r in rows)


class TestRenderReport:
    def test_sections_present(self, traced):
        document, result = traced
        html = render_report(
            document,
            run=result.to_dict(),
            bench_history=[
                ("BENCH_2.json", _bench_doc(1000.0)),
                ("BENCH_3.json", _bench_doc(900.0)),
            ],
            title="cap3 smoke",
        )
        assert "<title>cap3 smoke</title>" in html
        assert "Phase fractions" in html
        assert "Per-worker timeline" in html or "gantt" in html.lower()
        assert "Timeline counters" in html
        assert "Run result" in html
        assert "Bench history" in html
        assert "report-run" in html

    def test_self_contained(self, traced):
        document, _ = traced
        html = render_report(document)
        lowered = html.lower()
        assert "<script" not in lowered
        assert "http://" not in lowered and "https://" not in lowered
        assert 'src="' not in lowered.replace("src=\"data:", "")
        assert "<svg" in lowered  # charts are inline svg

    def test_renders_empty_trace(self):
        html = render_report({"traceEvents": [], "otherData": {}})
        assert "<html" in html

    def test_write_report(self, traced, tmp_path):
        document, _ = traced
        path = tmp_path / "out.html"
        html = write_report(path, document)
        assert path.read_text(encoding="utf-8") == html


class TestReportCli:
    def _trace_file(self, tmp_path, traced):
        document, result = traced
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(document), encoding="utf-8")
        run_path = tmp_path / "run.json"
        run_path.write_text(json.dumps(result.to_dict()), encoding="utf-8")
        return trace_path, run_path

    def test_report_renders_html(self, tmp_path, traced):
        trace_path, run_path = self._trace_file(tmp_path, traced)
        out_path = tmp_path / "report.html"
        code, text = run_cli(
            "report", str(trace_path), "--run", str(run_path),
            "-o", str(out_path), "--bench",
        )
        assert code == 0
        assert out_path.exists()
        assert "report.html" in text

    def test_report_writes_timeline_csv(self, tmp_path, traced):
        trace_path, _ = self._trace_file(tmp_path, traced)
        csv_path = tmp_path / "timeline.csv"
        code, _ = run_cli(
            "report", str(trace_path),
            "-o", str(tmp_path / "r.html"), "--bench",
            "--timeline-csv", str(csv_path),
        )
        assert code == 0
        lines = csv_path.read_text(encoding="utf-8").splitlines()
        assert lines[0] == "series,time_s,value"
        assert len(lines) > 1

    def test_report_missing_trace_exits_2(self, tmp_path):
        code, text = run_cli(
            "report", str(tmp_path / "nope.json"),
            "-o", str(tmp_path / "r.html"),
        )
        assert code == 2

    def test_report_invalid_trace_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": "nope"}), encoding="utf-8")
        code, _ = run_cli("report", str(bad), "-o", str(tmp_path / "r.html"))
        assert code == 2

    def test_bench_compare_cli(self, tmp_path):
        old = tmp_path / "OLD.json"
        new = tmp_path / "NEW.json"
        old.write_text(json.dumps(_bench_doc(1000.0)), encoding="utf-8")
        new.write_text(json.dumps(_bench_doc(500.0)), encoding="utf-8")
        code, text = run_cli("bench", "--compare", str(old), str(new))
        assert code == 0
        assert "REGRESSION" in text
        assert "OLD.json" in text and "NEW.json" in text
