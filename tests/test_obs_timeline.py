"""Timeline sampling: unit behaviour, producer wiring, export round-trip."""

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.obs import (
    NULL_TIMELINE,
    Timeline,
    chrome_trace,
    observe,
    series_from_trace,
    validate_chrome_trace,
)
from repro.workloads.genome import cap3_task_specs


class TestTimelineUnit:
    def test_sample_and_series(self):
        tl = Timeline()
        tl.sample("queue.depth", 0.0, 0)
        tl.sample("queue.depth", 1.5, 3)
        tl.sample("workers.busy", 0.5, 2)
        assert tl.series("queue.depth") == [(0.0, 0.0), (1.5, 3.0)]
        assert tl.names() == ["queue.depth", "workers.busy"]
        assert len(tl) == 3
        assert tl.series("missing") == []

    def test_snapshot_is_a_copy(self):
        tl = Timeline()
        tl.sample("s", 0.0, 1.0)
        snap = tl.snapshot()
        snap["s"].append((9.0, 9.0))
        assert tl.series("s") == [(0.0, 1.0)]

    def test_to_csv(self):
        tl = Timeline()
        tl.sample("b", 1.0, 2.0)
        tl.sample("a", 0.25, 1.0)
        csv = tl.to_csv()
        assert csv.splitlines() == [
            "series,time_s,value",
            "a,0.25,1",
            "b,1,2",
        ]

    def test_null_timeline_is_inert(self):
        NULL_TIMELINE.sample("anything", 1.0, 2.0)
        assert len(NULL_TIMELINE) == 0
        assert NULL_TIMELINE.enabled is False
        assert NULL_TIMELINE.to_csv() == "series,time_s,value\n"


class TestProducerWiring:
    def _traced_run(self, backend_name="ec2", **kwargs):
        app = get_application("cap3")
        tasks = cap3_task_specs(8, reads_per_file=150)
        backend = make_backend(backend_name, **kwargs)
        with observe(label=backend_name) as obs:
            backend.run(app, tasks)
        return obs

    def test_queue_depth_sampled_over_sim_time(self):
        obs = self._traced_run(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=5
        )
        depth = obs.timeline.series("queue.tasks.depth")
        assert depth, "queue depth series missing"
        times = [ts for ts, _ in depth]
        assert times == sorted(times)
        # The queue fills to 8 tasks and drains back to zero.
        assert max(v for _, v in depth) == 8.0
        assert depth[-1][1] == 0.0

    def test_busy_workers_sampled(self):
        obs = self._traced_run(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=5
        )
        busy = obs.timeline.series("workers.busy")
        util = obs.timeline.series("workers.utilization")
        assert busy and util
        values = [v for _, v in busy]
        assert min(values) >= 0.0
        assert max(values) >= 1.0
        assert all(0.0 <= v <= 1.0 for _, v in util)

    def test_scheduler_series_for_hadoop_and_dryad(self):
        from repro.cluster import get_cluster

        hadoop = self._traced_run(
            "hadoop", cluster=get_cluster("cap3-baremetal")
        )
        assert hadoop.timeline.series("scheduler.running_tasks")
        dryad = self._traced_run(
            "dryadlinq", cluster=get_cluster("cap3-baremetal-windows")
        )
        completed = dryad.timeline.series("scheduler.tasks_completed")
        assert completed
        assert completed[-1][1] == 8.0  # monotone count ends at n_tasks

    def test_untraced_run_samples_nothing(self):
        app = get_application("cap3")
        tasks = cap3_task_specs(4, reads_per_file=150)
        backend = make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=5
        )
        backend.run(app, tasks)  # no observe(): ambient bundle is null
        assert len(NULL_TIMELINE) == 0


class TestCounterExport:
    def test_counter_events_round_trip(self):
        tl = Timeline()
        tl.sample("queue.tasks.depth", 0.0, 0.0)
        tl.sample("queue.tasks.depth", 2.0, 5.0)
        tl.sample("autoscale.pool_instances", 1.0, 4.0)
        from repro.obs.tracer import Tracer

        document = chrome_trace(Tracer(label="tl"), timeline=tl)
        assert validate_chrome_trace(document) == []
        counters = [
            e for e in document["traceEvents"] if e.get("ph") == "C"
        ]
        assert len(counters) == 3
        assert all(e["pid"] == 1 for e in counters)
        restored = series_from_trace(document)
        assert restored["queue.tasks.depth"] == [(0.0, 0.0), (2.0, 5.0)]
        assert restored["autoscale.pool_instances"] == [(1.0, 4.0)]

    def test_traced_run_exports_counters(self):
        app = get_application("cap3")
        tasks = cap3_task_specs(8, reads_per_file=150)
        backend = make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=5
        )
        with observe(label="counters") as obs:
            backend.run(app, tasks)
        document = chrome_trace(
            obs.tracer, obs.metrics, timeline=obs.timeline
        )
        assert document["otherData"]["counter_events"] > 0
        restored = series_from_trace(document)
        assert restored["queue.tasks.depth"] == [
            (pytest.approx(ts), v)
            for ts, v in obs.timeline.series("queue.tasks.depth")
        ]
