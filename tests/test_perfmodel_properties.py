"""Property-based tests for the performance-model monotonicity laws.

These are the laws the figure reproductions implicitly rely on: if any
broke, a calibration tweak could silently invert a paper finding.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.perfmodels import APP_PERF_MODELS, task_runtime_seconds
from repro.cloud.instance_types import MachineModel

machines = st.builds(
    MachineModel,
    cores=st.integers(min_value=1, max_value=32),
    clock_ghz=st.floats(min_value=0.5, max_value=4.0),
    memory_gb=st.floats(min_value=1.0, max_value=128.0),
    mem_bandwidth_gbps=st.floats(min_value=1.0, max_value=50.0),
    os=st.sampled_from(["linux", "windows"]),
)

app_names = st.sampled_from(sorted(APP_PERF_MODELS))
work = st.floats(min_value=0.1, max_value=10_000.0)


@given(app_names, work, machines)
def test_runtime_positive(app_name, units, machine):
    model = APP_PERF_MODELS[app_name]
    assert task_runtime_seconds(model, units, machine) > 0


@given(app_names, work, machines)
def test_runtime_linear_in_work(app_name, units, machine):
    model = APP_PERF_MODELS[app_name]
    one = task_runtime_seconds(model, units, machine)
    double = task_runtime_seconds(model, 2 * units, machine)
    assert abs(double - 2 * one) < 1e-6 * double


@given(app_names, work, machines, st.floats(min_value=1.05, max_value=3.0))
def test_faster_clock_never_slower(app_name, units, machine, factor):
    model = APP_PERF_MODELS[app_name]
    base = task_runtime_seconds(model, units, machine)
    faster = task_runtime_seconds(
        model, units, machine, clock_ghz=machine.clock_ghz * factor
    )
    assert faster <= base + 1e-12


@given(app_names, work, machines, st.integers(min_value=2, max_value=32))
def test_more_concurrent_workers_never_faster(app_name, units, machine, crowd):
    """Sharing bandwidth and memory can only hurt a single task."""
    model = APP_PERF_MODELS[app_name]
    alone = task_runtime_seconds(model, units, machine, concurrent_workers=1)
    crowded = task_runtime_seconds(
        model, units, machine, concurrent_workers=crowd
    )
    assert crowded >= alone - 1e-12


@given(work, machines, st.integers(min_value=2, max_value=8))
def test_threads_never_hurt_supported_apps(units, machine, threads):
    model = APP_PERF_MODELS["blast"]
    single = task_runtime_seconds(model, units, machine, threads=1)
    multi = task_runtime_seconds(model, units, machine, threads=threads)
    assert multi <= single + 1e-12
    # But sublinear: never better than perfect scaling.
    assert multi >= single / threads - 1e-9


@given(app_names, machines, st.integers(min_value=1, max_value=32))
def test_paging_penalty_at_least_one(app_name, machine, workers):
    model = APP_PERF_MODELS[app_name]
    assert model.paging_penalty(machine, workers) >= 1.0


@given(machines, st.integers(min_value=1, max_value=16))
@settings(max_examples=50)
def test_more_memory_never_increases_blast_runtime(machine, workers):
    """Growing instance memory (all else equal) can only help BLAST."""
    model = APP_PERF_MODELS["blast"]
    small = task_runtime_seconds(
        model, 100, machine, concurrent_workers=min(workers, machine.cores)
    )
    bigger = MachineModel(
        cores=machine.cores,
        clock_ghz=machine.clock_ghz,
        memory_gb=machine.memory_gb * 4,
        mem_bandwidth_gbps=machine.mem_bandwidth_gbps,
        os=machine.os,
    )
    large = task_runtime_seconds(
        model, 100, bigger, concurrent_workers=min(workers, machine.cores)
    )
    assert large <= small + 1e-9
