"""Poison tasks end-to-end: crash loops bounded by the redrive policy.

The paper's fault-tolerance argument covers worker failures (idempotent
re-execution).  A *poison* input — one that crashes every worker that
touches it — breaks that argument: without a redrive policy the job
never finishes.  With one, healthy work completes and the poison task is
quarantined for inspection.
"""

import pytest

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs


def config(poison_ids=frozenset(), max_attempts=None, **kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        visibility_timeout_s=60.0,
        fault_plan=FaultPlan(
            queue_miss_probability=0.0,
            poison_task_ids=frozenset(poison_ids),
            poison_restart_s=20.0,
        ),
        consistency_window_s=0.0,
        seed=13,
        max_task_attempts=max_attempts,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


@pytest.fixture
def cap3():
    return get_application("cap3")


def test_poison_task_quarantined_healthy_work_completes(cap3):
    tasks = cap3_task_specs(24, reads_per_file=200)
    poison = {tasks[5].task_id}
    result = ClassicCloudFramework(
        config(poison_ids=poison, max_attempts=3)
    ).run(cap3, tasks)
    healthy = {t.task_id for t in tasks} - poison
    assert result.completed_task_ids == healthy
    assert result.failed == poison
    assert result.extras["dead_lettered"] == 1.0
    # The run terminated despite a task that can never succeed.
    assert result.makespan_seconds < 10_000


def test_multiple_poison_tasks(cap3):
    tasks = cap3_task_specs(24, reads_per_file=200)
    poison = {tasks[0].task_id, tasks[12].task_id, tasks[23].task_id}
    result = ClassicCloudFramework(
        config(poison_ids=poison, max_attempts=2)
    ).run(cap3, tasks)
    assert result.failed == poison
    assert len(result.completed_task_ids) == 21


def test_without_redrive_poison_hangs_until_watchdog(cap3):
    """The paper's unbounded behaviour: the poison message redelivers
    forever and the run only ends via the safety watchdog."""
    tasks = cap3_task_specs(8, reads_per_file=200)
    poison = {tasks[0].task_id}
    bounded = config(
        poison_ids=poison,
        max_attempts=None,
        max_sim_seconds=20_000.0,
    )
    with pytest.raises(RuntimeError, match="max_sim_seconds"):
        ClassicCloudFramework(bounded).run(cap3, tasks)


def test_redrive_without_poison_changes_nothing(cap3):
    tasks = cap3_task_specs(24, reads_per_file=200)
    plain = ClassicCloudFramework(config()).run(cap3, tasks)
    with_redrive = ClassicCloudFramework(config(max_attempts=5)).run(
        cap3, tasks
    )
    assert with_redrive.completed_task_ids == plain.completed_task_ids
    assert with_redrive.failed == set()
    assert with_redrive.extras["dead_lettered"] == 0.0


def test_tight_visibility_with_redrive_counts_tasks_once(cap3):
    """Regression: visibility shorter than the task time makes healthy
    tasks both complete *and* trip the receive limit.  The watcher must
    count distinct tasks (union), not sum the two tallies, or the run
    ends early with work unaccounted."""
    tasks = cap3_task_specs(16, reads_per_file=200)  # ~50s tasks
    result = ClassicCloudFramework(
        config(max_attempts=3, visibility_timeout_s=20.0)
    ).run(cap3, tasks)
    # Every task is accounted exactly once; a task that completed is a
    # success even if its message also dead-lettered.
    assert result.completed_task_ids | result.failed == {
        t.task_id for t in tasks
    }
    assert result.completed_task_ids & result.failed == set()
    assert result.completed_task_ids == {t.task_id for t in tasks}


def test_failed_tasks_round_trip_through_json(cap3, tmp_path):
    from repro.core.task import RunResult

    tasks = cap3_task_specs(12, reads_per_file=200)
    poison = {tasks[3].task_id}
    result = ClassicCloudFramework(
        config(poison_ids=poison, max_attempts=2)
    ).run(cap3, tasks)
    path = tmp_path / "trace.json"
    result.to_json(path)
    back = RunResult.from_json(path)
    assert back.failed == poison
    assert back.completed_task_ids == result.completed_task_ids
