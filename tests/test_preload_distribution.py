"""Tests for database-distribution (preload) modelling across backends.

Paper Section 5: every implementation distributes the 2.9 GB compressed
BLAST database to workers before processing — Classic Cloud downloads
from blob storage, Hadoop uses the distributed cache, DryadLINQ copies
manually over Windows shares.  Distribution time is tracked but excluded
from reported compute times.
"""

import pytest

from repro.cloud.failures import FaultPlan
from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.workloads.protein import blast_task_specs


@pytest.fixture(scope="module")
def blast():
    return get_application("blast")


@pytest.fixture(scope="module")
def tasks():
    return blast_task_specs(16, inhomogeneous_base=False, seed=2)


def test_all_backends_report_preload(blast, tasks):
    backends = {
        "ec2": make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=1
        ),
        "hadoop": make_backend(
            "hadoop", cluster=get_cluster("idataplex").subset(4), seed=1
        ),
        "dryadlinq": make_backend(
            "dryadlinq", cluster=get_cluster("hpc-blast").subset(4), seed=1
        ),
    }
    for name, backend in backends.items():
        result = backend.run(blast, tasks)
        assert result.extras["preload_seconds"] > 0, name


def test_cap3_needs_no_preload(tasks):
    cap3 = get_application("cap3")
    from repro.workloads.genome import cap3_task_specs

    result = make_backend(
        "hadoop", cluster=get_cluster("cap3-baremetal").subset(2), seed=1
    ).run(cap3, cap3_task_specs(8, reads_per_file=100))
    assert result.extras["preload_seconds"] == 0.0


def test_distributed_cache_scales_manual_copy_does_not(blast, tasks):
    """Hadoop's distributed cache pulls in parallel; Dryad's manual
    share copy serializes on the head node — so Dryad's distribution
    time grows with cluster size while Hadoop's stays flat."""

    def hadoop_preload(n_nodes):
        return make_backend(
            "hadoop", cluster=get_cluster("idataplex").subset(n_nodes), seed=1
        ).run(blast, tasks).extras["preload_seconds"]

    def dryad_preload(n_nodes):
        return make_backend(
            "dryadlinq", cluster=get_cluster("hpc-blast").subset(n_nodes),
            seed=1,
        ).run(blast, tasks).extras["preload_seconds"]

    assert hadoop_preload(2) == pytest.approx(hadoop_preload(8))
    # The transfer component (beyond the fixed extract time) scales
    # linearly with node count under the serialized share copy.
    extract = 120.0
    transfer_2 = dryad_preload(2) - extract
    transfer_8 = dryad_preload(8) - extract
    assert transfer_8 == pytest.approx(4.0 * transfer_2, rel=0.05)
    # At scale, manual distribution costs more than the cache.
    assert dryad_preload(8) > hadoop_preload(8)


def test_preload_excluded_from_makespan(blast, tasks):
    """Distribution happens outside the measured window: a run with a
    preloaded app on Hadoop has the same makespan as the identical app
    without preload bytes."""
    from dataclasses import replace

    no_preload = replace(blast, preload_bytes=0, preload_extract_seconds=0.0)
    backend = make_backend(
        "hadoop", cluster=get_cluster("idataplex").subset(4), seed=1
    )
    with_db = backend.run(blast, tasks)
    without_db = make_backend(
        "hadoop", cluster=get_cluster("idataplex").subset(4), seed=1
    ).run(no_preload, tasks)
    assert with_db.makespan_seconds == pytest.approx(
        without_db.makespan_seconds
    )
