"""Property-based tests (hypothesis) over core invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps.cap3 import Cap3Params, assemble, trim_read
from repro.apps.fasta import FastaRecord, parse_fasta, write_fasta
from repro.apps.gtm import gtm_interpolate, gtm_responsibilities, train_gtm
from repro.cloud.billing import CostMeter
from repro.cloud.pricing import AWS_PRICES
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.dryad.partitions import partition_tasks
from repro.core.task import TaskSpec

import io


# -- FASTA round-trip ---------------------------------------------------------

seq_alphabet = st.sampled_from("ACGTN")
dna = st.text(alphabet=seq_alphabet, min_size=0, max_size=300)
record_ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=20,
)


@given(st.lists(st.tuples(record_ids, dna), min_size=0, max_size=20))
def test_fasta_roundtrip_preserves_records(pairs):
    # De-duplicate ids (FASTA allows duplicates; easier to compare unique).
    records = [FastaRecord(id=f"r{i}_{rid}", seq=seq) for i, (rid, seq) in enumerate(pairs)]
    text = write_fasta(records)
    back = list(parse_fasta(io.StringIO(text)))
    assert [(r.id, r.seq) for r in back] == [(r.id, r.seq) for r in records]


# -- FASTQ round-trip -----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="ACGTN", min_size=1, max_size=120),
            st.integers(min_value=0, max_value=93),
        ),
        min_size=0,
        max_size=10,
    )
)
def test_fastq_roundtrip(reads):
    from repro.apps.fastq import FastqRecord, parse_fastq, write_fastq

    records = [
        FastqRecord(
            id=f"r{i}", seq=seq, qualities=tuple([quality] * len(seq))
        )
        for i, (seq, quality) in enumerate(reads)
    ]
    text = write_fastq(records)
    back = list(parse_fastq(io.StringIO(text)))
    assert back == records


# -- trimming -------------------------------------------------------------------


@given(dna.filter(lambda s: len(s) > 0))
def test_trim_output_is_clean_or_none(seq):
    record = FastaRecord(id="x", seq=seq)
    trimmed = trim_read(record, min_length=10)
    if trimmed is not None:
        assert len(trimmed.seq) >= 10
        assert not trimmed.seq.startswith("N")
        assert not trimmed.seq.endswith("N")
        assert trimmed.seq == trimmed.seq.upper()
        assert set(trimmed.seq) <= set("ACGTN")


# -- assembly invariants --------------------------------------------------------


@given(
    st.lists(
        st.text(alphabet=st.sampled_from("ACGT"), min_size=50, max_size=120),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_assembly_conserves_reads(seqs):
    """Every surviving read is either placed in a contig or a singleton,
    never both, never lost."""
    records = [FastaRecord(id=f"r{i}", seq=s) for i, s in enumerate(seqs)]
    result = assemble(records, Cap3Params(min_read_length=40))
    placed = [rid for c in result.contigs for rid, _ in c.reads]
    singles = [r.id for r in result.singletons]
    assert len(placed) == len(set(placed))  # no double placement
    assert set(placed).isdisjoint(singles)
    survivors = result.stats["reads_after_trim"]
    assert len(placed) + len(singles) == survivors
    # Each contig has at least 2 reads.
    for contig in result.contigs:
        assert len(contig.reads) >= 2


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_consensus_of_identical_reads_is_the_read(n_copies, seed):
    rng = np.random.default_rng(seed)
    seq = "".join("ACGT"[i] for i in rng.integers(0, 4, size=120))
    records = [FastaRecord(id=f"c{i}", seq=seq) for i in range(n_copies)]
    result = assemble(records)
    # Identical reads fully contain each other: one contig, consensus == read.
    assert len(result.contigs) == 1
    assert result.contigs[0].seq == seq


# -- GTM invariants ---------------------------------------------------------------


@given(
    st.integers(min_value=10, max_value=40),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=10, deadline=None)
def test_gtm_responsibilities_always_normalized(n_points, dim, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_points, dim))
    model = train_gtm(data, latent_per_dim=4, rbf_per_dim=2, iterations=3)
    resp = gtm_responsibilities(model, data)
    np.testing.assert_allclose(resp.sum(axis=1), 1.0, rtol=1e-9)
    assert (resp >= 0).all()
    latent = gtm_interpolate(model, data)
    assert np.abs(latent).max() <= 1.0 + 1e-9


# -- metrics -------------------------------------------------------------------


@given(
    st.floats(min_value=1e-3, max_value=1e6),
    st.floats(min_value=1e-3, max_value=1e6),
    st.integers(min_value=1, max_value=4096),
)
def test_efficiency_positive_and_consistent_with_speedup(t1, tp, cores):
    eff = parallel_efficiency(t1, tp, cores)
    assert eff > 0
    # Efficiency * cores == speedup (up to float rounding).
    assert abs(eff * cores - t1 / tp) <= 1e-9 * (t1 / tp)


@given(
    st.floats(min_value=0, max_value=1e6),
    st.integers(min_value=1, max_value=1024),
    st.integers(min_value=1, max_value=100_000),
)
def test_eq2_scales_linearly_in_cores(tp, cores, n):
    single = average_time_per_file_per_core(tp, 1, n)
    multi = average_time_per_file_per_core(tp, cores, n)
    assert abs(multi - single * cores) < 1e-6 * max(1.0, multi)


# -- partitioning ----------------------------------------------------------------


def _specs(n):
    return [
        TaskSpec(
            task_id=f"t{i}",
            input_key=f"i{i}",
            output_key=f"o{i}",
            input_size=1,
            output_size=1,
            work_units=1.0,
        )
        for i in range(n)
    ]


@given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=32))
def test_partitioning_is_exact_and_balanced_by_count(n_tasks, n_parts):
    ps = partition_tasks(_specs(n_tasks), n_parts)
    sizes = ps.sizes()
    assert sum(sizes) == n_tasks
    assert max(sizes) - min(sizes) <= 1
    flattened = [t.task_id for p in ps.partitions for t in p]
    assert flattened == [f"t{i}" for i in range(n_tasks)]


# -- billing conservation ------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100_000.0),
            st.floats(min_value=0.01, max_value=5.0),
        ),
        min_size=0,
        max_size=30,
    )
)
def test_billing_full_hours_never_below_amortized(usages):
    meter = CostMeter(AWS_PRICES)
    for seconds, rate in usages:
        meter.record_instance_usage("X", seconds, rate)
    report = meter.report()
    assert report.compute_cost >= report.amortized_compute_cost - 1e-9
    assert report.total_cost >= report.total_amortized_cost - 1e-9
    # Never bill more than one extra hour per instance record.
    extra = report.compute_cost - report.amortized_compute_cost
    assert extra <= sum(rate for _, rate in usages) + 1e-9
