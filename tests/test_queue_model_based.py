"""Model-based (hypothesis) testing of the simulated queue semantics.

Random operation sequences against the DES queue, checked against an
abstract at-least-once model: messages are conserved, receives only ever
return sent bodies, and successful deletes remove exactly one message.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.queue import MessageQueue, StaleReceiptError
from repro.sim import Environment

# Each op is ('send', body) | ('receive',) | ('delete', held index)
# | ('advance', seconds).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("receive")),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=5)),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.1, max_value=20.0),
        ),
    ),
    min_size=1,
    max_size=60,
)


def drive(env, gen):
    return env.run(until=env.process(gen))


@given(ops, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=80, deadline=None)
def test_queue_invariants_under_random_operations(operations, seed):
    env = Environment()
    queue = MessageQueue(
        env,
        "model",
        np.random.default_rng(seed),
        visibility_timeout_s=5.0,
        latency_sigma=0.0,
        propagation_delay_s=0.05,
        miss_probability=0.1,
    )
    sent: list[int] = []
    deleted: list[int] = []
    held = []  # messages we received and might delete

    for op in operations:
        if op[0] == "send":
            drive(env, queue.send(op[1]))
            sent.append(op[1])
        elif op[0] == "receive":
            message = drive(env, queue.receive())
            if message is not None:
                # Receives only ever surface sent bodies.
                assert message.body in sent
                held.append(message)
        elif op[0] == "delete":
            if held:
                message = held[op[1] % len(held)]
                before = queue.stats.deleted
                try:
                    drive(env, queue.delete(message))
                except StaleReceiptError:
                    pass  # superseded receipt: legal at-least-once outcome
                if queue.stats.deleted > before:
                    # Deletes are idempotent; only count real removals.
                    deleted.append(message.body)
        else:  # advance
            env.run(until=env.now + op[1])

    # Conservation: every sent message is either still in the queue or
    # was deleted exactly once.
    assert queue.approximate_size() + len(deleted) == len(sent)
    assert queue.stats.deleted == len(deleted)

    # Everything still in the queue is eventually receivable again:
    # after the visibility window passes, drain with long receipts.
    env.run(until=env.now + queue.visibility_timeout_s + 1.0)
    recoverable = []
    for _ in range(4 * queue.approximate_size() + 8):
        message = drive(env, queue.receive(visibility_timeout_s=1000.0))
        if message is not None:
            recoverable.append(message.body)
    assert len(recoverable) == len(sent) - len(deleted)
    # Multiset conservation: deleted + recoverable == sent.
    assert sorted(recoverable + deleted) == sorted(sent)
