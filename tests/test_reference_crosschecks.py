"""Cross-checks against SciPy / NetworkX reference implementations.

Independent implementations of the same mathematics catch silent errors
that self-consistent unit tests cannot.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial.distance import cdist

from repro.apps.gtm import _sqdist, gtm_interpolate, train_gtm
from repro.dryad.graph import DryadGraph, Vertex


class TestSqdistVsScipy:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_cdist(self, n_a, n_b, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(scale=5.0, size=(n_a, dim))
        b = rng.normal(scale=5.0, size=(n_b, dim))
        ours = _sqdist(a, b)
        reference = cdist(a, b, metric="sqeuclidean")
        np.testing.assert_allclose(ours, reference, rtol=1e-8, atol=1e-8)

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 8)) * 1e-8  # near-degenerate values
        assert (_sqdist(a, a) >= 0).all()


class TestGtmVsScipyKmeansBaseline:
    def test_gtm_separates_what_kmeans_separates(self):
        """On cleanly clustered data, GTM's latent projection must keep
        the same clusters separable that plain k-means recovers."""
        from scipy.cluster.vq import kmeans2

        rng = np.random.default_rng(5)
        centers = np.eye(4)[:, :4] * 12.0  # 4 well-separated centers
        points = np.concatenate(
            [c + rng.normal(scale=0.5, size=(40, 4)) for c in centers]
        )
        labels = np.repeat(np.arange(4), 40)
        model = train_gtm(points, latent_per_dim=8, rbf_per_dim=3, iterations=15)
        latent = gtm_interpolate(model, points)
        # k-means on the 2-D latent embedding recovers the 4 groups.
        _, assignments = kmeans2(latent, 4, seed=3, minit="++")
        # Cluster agreement up to label permutation: every true cluster
        # maps to a dominant latent cluster.
        for true in range(4):
            values, counts = np.unique(
                assignments[labels == true], return_counts=True
            )
            assert counts.max() / counts.sum() > 0.9


class TestDryadGraphVsNetworkx:
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_stages_match_topological_generations(self, n, raw_edges, seed):
        del seed
        graph = DryadGraph()
        nx_graph = nx.DiGraph()
        for v in range(n):
            graph.add_vertex(Vertex(f"v{v}"))
            nx_graph.add_node(f"v{v}")
        seen = set()
        for a, b in raw_edges:
            a, b = a % n, b % n
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            graph.add_channel(f"v{a}", f"v{b}")
            nx_graph.add_edge(f"v{a}", f"v{b}")
        if not nx.is_directed_acyclic_graph(nx_graph):
            with pytest.raises(ValueError, match="cycle"):
                graph.stages()
            return
        ours = [[v.vertex_id for v in layer] for layer in graph.stages()]
        reference = [
            sorted(generation)
            for generation in nx.topological_generations(nx_graph)
        ]
        assert ours == reference
