"""Deterministic-replay regression: same seed, byte-identical traces.

Runs one Cap3 Classic Cloud scenario twice under the runtime sanitizer
and asserts the recorded event traces — every fired event with its
timestamp, scheduling sequence number and label — are byte-identical.
This is the executable form of the kernel's determinism promise.
"""

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs


def play_cap3(seed: int):
    config = ClassicCloudConfig(
        provider="aws",
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        seed=seed,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        sanitize=True,
    )
    framework = ClassicCloudFramework(config)
    app = get_application("cap3")
    tasks = cap3_task_specs(24, seed=seed)
    result = framework.run(app, tasks)
    env = framework.last_environment
    return result, env


def test_cap3_trace_is_byte_identical_across_replays():
    result1, env1 = play_cap3(seed=7)
    result2, env2 = play_cap3(seed=7)
    trace1, trace2 = env1.trace_text(), env2.trace_text()
    assert trace1  # the sanitizer actually recorded something
    assert trace1.encode("utf-8") == trace2.encode("utf-8")
    assert result1.makespan_seconds == result2.makespan_seconds  # repro: noqa[RPR005] exact: determinism contract


def test_different_seed_changes_the_trace():
    _, env1 = play_cap3(seed=7)
    _, env2 = play_cap3(seed=8)
    assert env1.trace_text() != env2.trace_text()


def test_sanitizer_finds_no_kernel_violations_in_cap3_run():
    _, env = play_cap3(seed=7)
    report = env.sanitizer_report()
    assert report.double_triggers == []
    assert report.events_fired == len(env.trace)
