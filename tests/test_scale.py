"""Paper-scale integration runs (the largest configurations reported).

These exercise the simulator at the full fleet sizes of the paper's
evaluation — 128 cores, hundreds-to-thousands of tasks — and pin the
headline numbers EXPERIMENTS.md reports.
"""

import pytest

from repro.cloud.failures import FaultPlan
from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.metrics import parallel_efficiency
from repro.workloads.genome import cap3_task_specs
from repro.workloads.protein import blast_task_specs
from repro.workloads.pubchem import gtm_task_specs


def quiet(backend, **kwargs):
    if backend in ("ec2", "azure"):
        kwargs.setdefault("fault_plan", FaultPlan.none())
    kwargs.setdefault("seed", 21)
    return make_backend(backend, **kwargs)


class TestPaperScaleCap3:
    def test_4096_files_on_16_hcxl(self):
        """The Table 4 workload: just under one billable hour."""
        app = get_application("cap3")
        tasks = cap3_task_specs(4096, reads_per_file=458)
        backend = quiet("ec2", n_instances=16, perf_jitter=0.0)
        result = backend.run(app, tasks)
        assert result.completed_task_ids == {t.task_id for t in tasks}
        assert 3000 < result.makespan_seconds <= 3600
        assert result.billing.compute_cost == pytest.approx(10.88)

    def test_full_azure_fleet(self):
        """128 Azure Small instances — the paper's largest Azure run."""
        app = get_application("cap3")
        tasks = cap3_task_specs(512, reads_per_file=458)
        backend = quiet("azure", n_instances=128)
        result = backend.run(app, tasks)
        assert len(result.completed_task_ids) == 512
        t1 = backend.estimate_sequential_time(app, tasks)
        eff = parallel_efficiency(t1, result.makespan_seconds, 128)
        assert eff > 0.85


class TestPaperScaleBlast:
    def test_768_query_files_on_128_cores(self):
        """The paper's largest BLAST point (6x replication of the base
        set); amortized cost ~ $10 on EC2 per Section 5.2."""
        app = get_application("blast")
        tasks = blast_task_specs(768, seed=5)
        backend = quiet("ec2", n_instances=16)
        result = backend.run(app, tasks)
        assert len(result.completed_task_ids) == 768
        # "The amortized cost to process 768*100 queries ... was ~10$
        # using EC2" — ours lands in the same ballpark.
        assert 5.0 < result.billing.total_amortized_cost < 20.0


class TestPaperScaleGtm:
    def test_264_files_across_all_platforms(self):
        app = get_application("gtm")
        tasks = gtm_task_specs(264)
        backends = {
            "azure": quiet("azure", n_instances=64),
            "hadoop": make_backend(
                "hadoop", cluster=get_cluster("gtm-hadoop"), seed=21
            ),
            "dryadlinq": make_backend(
                "dryadlinq", cluster=get_cluster("gtm-dryad"), seed=21
            ),
        }
        for name, backend in backends.items():
            result = backend.run(app, tasks)
            assert len(result.completed_task_ids) == 264, name
