"""The job service layer: admission books, fairness, faults, determinism."""

import io

import pytest

from repro.autoscale.plan import AutoscalePlan
from repro.cli import main
from repro.cloud.spot import BidStrategy, SpotMarketModel
from repro.serve import (
    ServeConfig,
    TenantSpec,
    default_tenants,
    run_serve,
    serialize_rows,
    serve_study,
)
from repro.serve.tenants import peak_rate, rate_at


def tenant_by_name(result, name):
    (stats,) = [t for t in result.tenants if t.name == name]
    return stats


class TestArrivalShapes:
    def test_poisson_rate_is_flat(self):
        spec = TenantSpec(name="t", app="cap3", rate_per_s=0.5)
        assert rate_at(spec, 0.0) == rate_at(spec, 123.0) == 0.5
        assert peak_rate(spec) == 0.5

    def test_burst_preserves_the_mean_rate(self):
        spec = TenantSpec(
            name="t", app="cap3", arrival="burst", rate_per_s=0.4,
            burst_factor=4.0, burst_duty=0.2, period_s=100.0,
        )
        # Integrate one period: duty on-phase at factor x rate, the rest
        # at the compensating off-rate.
        on = 0.2 * 100.0 * rate_at(spec, 10.0)
        off = 0.8 * 100.0 * rate_at(spec, 50.0)
        assert on + off == pytest.approx(0.4 * 100.0)
        assert peak_rate(spec) == pytest.approx(1.6)

    def test_diurnal_never_goes_negative(self):
        spec = TenantSpec(
            name="t", app="gtm", arrival="diurnal", rate_per_s=0.3,
            diurnal_amplitude=0.8, period_s=600.0,
        )
        rates = [rate_at(spec, t) for t in range(0, 1200, 25)]
        assert min(rates) >= 0.0
        assert max(rates) <= peak_rate(spec) + 1e-12

    def test_mean_preservation_constraint_enforced(self):
        with pytest.raises(ValueError):
            TenantSpec(
                name="t", app="cap3", arrival="burst",
                burst_factor=6.0, burst_duty=0.2,
            )


class TestZeroCapacity:
    def test_books_balance_with_no_fleet(self):
        # No workers at all: the quota fills, everything else sheds,
        # and the drain writes the admitted jobs off as abandoned.
        config = ServeConfig(
            tenants=(
                TenantSpec(name="g", app="cap3", rate_per_s=1.0, quota=10),
            ),
            n_instances=0,
            duration_s=60.0,
            drain_timeout_s=30.0,
            seed=7,
        )
        result = run_serve(config)
        (stats,) = result.tenants
        assert stats.completed == 0
        assert stats.admitted == 10  # the quota, exactly
        assert stats.abandoned == 10
        assert stats.shed_quota > 0
        assert stats.submitted == stats.admitted + stats.shed
        assert result.cost_per_1k_jobs is None
        assert stats.slo_ok is None
        assert stats.p95_s is None


class TestBurstOverQuota:
    def test_shed_accounting_is_exact(self):
        # One instance, a hard burst far over the quota: some jobs must
        # shed, and every submission lands in exactly one bucket.
        config = ServeConfig(
            tenants=(
                TenantSpec(
                    name="spiky", app="cap3", arrival="burst",
                    rate_per_s=1.5, burst_factor=4.0, burst_duty=0.25,
                    period_s=120.0, quota=8,
                ),
            ),
            n_instances=1,
            duration_s=240.0,
            seed=3,
        )
        result = run_serve(config)
        (stats,) = result.tenants
        assert stats.shed_quota > 0
        assert stats.submitted == stats.admitted + stats.shed_quota + stats.shed_backlog
        assert stats.admitted == stats.completed + stats.abandoned
        assert stats.completed > 0

    def test_global_backlog_cap_sheds_typed(self):
        config = ServeConfig(
            tenants=(
                TenantSpec(name="flood", app="cap3", rate_per_s=2.0, quota=500),
            ),
            n_instances=1,
            duration_s=180.0,
            max_backlog=16,
            seed=5,
        )
        result = run_serve(config)
        (stats,) = result.tenants
        assert stats.shed_backlog > 0
        assert stats.submitted == stats.admitted + stats.shed


class TestFairness:
    def test_skewed_weights_do_not_starve_the_light_tenant(self):
        # Both tenants overload one instance; WDRR must still serve the
        # weight-1 tenant at roughly 1/10 the heavy tenant's share.
        config = ServeConfig(
            tenants=(
                TenantSpec(
                    name="heavy", app="cap3", rate_per_s=1.0,
                    weight=10.0, quota=200,
                ),
                TenantSpec(
                    name="light", app="cap3", rate_per_s=1.0,
                    weight=1.0, quota=200,
                ),
            ),
            n_instances=1,
            duration_s=300.0,
            max_backlog=400,
            seed=11,
        )
        result = run_serve(config)
        heavy = tenant_by_name(result, "heavy")
        light = tenant_by_name(result, "light")
        assert light.completed > 0  # never starved
        # Weighted priority shows up as latency: the heavy tenant's
        # jobs jump most of the queue, the light tenant's jobs wait —
        # but they are dispatched every round, never starved.
        assert heavy.p95_s < light.p95_s / 3
        for stats in (heavy, light):
            assert stats.submitted == stats.admitted + stats.shed
            assert stats.admitted == stats.completed + stats.abandoned


class TestPreemption:
    def test_preempted_jobs_complete_idempotently(self):
        # A hostile spot market on a mixed-bid elastic fleet: workers
        # get preempted mid-job, the visibility timeout returns the job,
        # and every admitted job still completes exactly once.
        market = SpotMarketModel(spike_probability=0.5, interval_s=60.0)
        config = ServeConfig(
            tenants=default_tenants(),
            n_instances=2,
            duration_s=240.0,
            visibility_timeout_s=60.0,
            seed=2,
            autoscale=AutoscalePlan(
                min_instances=1,
                max_instances=4,
                bid=BidStrategy.mixed(1.0),
                spot_market=market,
            ),
        )
        result = run_serve(config)
        assert result.extras["autoscale_preemptions"] > 0
        assert result.extras["reappearances"] > 0
        assert result.admitted == result.completed
        assert result.abandoned == 0
        # Duplicate deliveries were recognised, not double-counted.
        for stats in result.tenants:
            assert stats.completed <= stats.admitted


class TestDeterminism:
    def test_same_seed_same_frontier(self):
        first, _ = serve_study(
            fleet_sizes=(1,), duration_s=120.0, seed=42, jobs=1
        )
        second, _ = serve_study(
            fleet_sizes=(1,), duration_s=120.0, seed=42, jobs=1
        )
        assert serialize_rows(first) == serialize_rows(second)

    def test_parallel_equals_serial_byte_for_byte(self):
        serial, _ = serve_study(
            fleet_sizes=(1, 2), duration_s=120.0, seed=42, jobs=1
        )
        fanned, _ = serve_study(
            fleet_sizes=(1, 2), duration_s=120.0, seed=42, jobs=2
        )
        assert serialize_rows(serial) == serialize_rows(fanned)


class TestConfigValidation:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(
                tenants=(
                    TenantSpec(name="a", app="cap3"),
                    TenantSpec(name="a", app="gtm"),
                ),
            )

    def test_zero_capacity_with_autoscale_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(
                tenants=(TenantSpec(name="a", app="cap3"),),
                n_instances=0,
                autoscale=AutoscalePlan(),
            )


class TestCliServe:
    def test_smoke_prints_frontier(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "frontier.json"
        code = main(
            [
                "serve", "--seed", "42", "--duration", "60",
                "--fleet", "1", "--jobs", "1",
                "--json", str(json_path),
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "cost vs latency frontier" in text
        assert "genomics" in text and "chemistry" in text
        assert json_path.is_file()
        assert '"tenant"' in json_path.read_text()
