"""Shape stability: the paper's headline orderings must hold across seeds.

The benchmark suite asserts each figure's shape at one seed; these tests
re-check the most important orderings at several seeds so a finding
can't hinge on one lucky random stream.
"""

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import ClassicCloudBackend, make_backend
from repro.classiccloud.framework import ClassicCloudConfig
from repro.workloads.genome import cap3_task_specs
from repro.workloads.pubchem import gtm_task_specs

SEEDS = [1, 7, 42]


def ec2(instance_type, n_instances, workers, seed):
    return ClassicCloudBackend(
        ClassicCloudConfig(
            provider="aws",
            instance_type=instance_type,
            n_instances=n_instances,
            workers_per_instance=workers,
            fault_plan=FaultPlan.none(),
            consistency_window_s=0.0,
            seed=seed,
        )
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_cap3_hm4xl_fastest_hcxl_cheapest(seed):
    """Figures 3/4's winners, at every seed."""
    app = get_application("cap3")
    tasks = cap3_task_specs(64, reads_per_file=200, seed=seed)
    shapes = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]
    times, costs = {}, {}
    for itype, n, workers in shapes:
        result = ec2(itype, n, workers, seed).run(app, tasks)
        times[itype] = result.makespan_seconds
        costs[itype] = result.billing.compute_cost
    assert min(times, key=times.get) == "HM4XL"
    assert min(costs, key=costs.get) == "HCXL"


@pytest.mark.parametrize("seed", SEEDS)
def test_gtm_bandwidth_ordering(seed):
    """Figure 13's ordering (HM4XL < L < HCXL), at every seed."""
    app = get_application("gtm")
    tasks = gtm_task_specs(48)
    times = {}
    for itype, n, workers in (("L", 8, 2), ("HCXL", 2, 8), ("HM4XL", 2, 8)):
        result = ec2(itype, n, workers, seed).run(app, tasks)
        times[itype] = result.makespan_seconds
    assert times["HM4XL"] < times["L"] < times["HCXL"]


@pytest.mark.parametrize("seed", SEEDS)
def test_four_frameworks_within_20_percent_on_cap3(seed):
    """Figure 5's comparability claim, at every seed."""
    from repro.cluster import get_cluster
    from repro.core.metrics import parallel_efficiency

    app = get_application("cap3")
    tasks = cap3_task_specs(128, reads_per_file=458, seed=seed)
    backends = {
        "ec2": ec2("HCXL", 4, 8, seed),
        "azure": make_backend(
            "azure", n_instances=32, fault_plan=FaultPlan.none(), seed=seed
        ),
        "hadoop": make_backend(
            "hadoop", cluster=get_cluster("cap3-baremetal").subset(4), seed=seed
        ),
        "dryadlinq": make_backend(
            "dryadlinq",
            cluster=get_cluster("cap3-baremetal-windows").subset(4),
            seed=seed,
        ),
    }
    efficiencies = {}
    for name, backend in backends.items():
        result = backend.run(app, tasks)
        t1 = backend.estimate_sequential_time(app, tasks)
        efficiencies[name] = parallel_efficiency(
            t1, result.makespan_seconds, backend.total_cores
        )
    assert max(efficiencies.values()) / min(efficiencies.values()) < 1.25
    assert min(efficiencies.values()) > 0.75
