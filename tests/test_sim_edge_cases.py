"""Edge-case coverage for the DES kernel beyond the basic suite."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
)


class TestInterruptInteractions:
    def test_interrupt_while_waiting_on_store_get(self):
        """An interrupted getter abandons its wait; a later put goes to
        the next getter, not the dead one."""
        env = Environment()
        store = Store(env)
        got = []

        def impatient(env):
            try:
                item = yield store.get()
                got.append(("impatient", item))
            except Interrupt:
                return "gave up"

        def patient(env):
            item = yield store.get()
            got.append(("patient", item))

        p1 = env.process(impatient(env))
        env.process(patient(env))

        def driver(env):
            yield env.timeout(1.0)
            p1.interrupt()
            yield env.timeout(1.0)
            yield store.put("x")

        env.process(driver(env))
        env.run()
        # NOTE: the abandoned get() is still queued in the store, so the
        # item resolves that stale event first — but nobody consumes its
        # value.  The patient getter receives the next put.
        assert ("impatient", "x") not in got

    def test_interrupt_while_holding_resource_then_release(self):
        """Interrupted holders must release in a finally block — the
        documented usage pattern keeps the resource usable."""
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def holder(env):
            request = resource.request()
            yield request
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            finally:
                resource.release(request)
            order.append("holder released")

        def waiter(env):
            request = resource.request()
            yield request
            order.append("waiter acquired")
            resource.release(request)

        p = env.process(holder(env))
        env.process(waiter(env))

        def interrupter(env):
            yield env.timeout(5.0)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert order == ["holder released", "waiter acquired"]

    def test_double_interrupt_second_after_death_is_error(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                return "dead"

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            p.interrupt()
            yield env.timeout(1.0)
            try:
                p.interrupt()
            except SimulationError:
                return "second interrupt rejected"

        k = env.process(killer(env))
        assert env.run(until=k) == "second interrupt rejected"


class TestEventReuse:
    def test_many_waiters_one_event(self):
        env = Environment()
        gate = env.event()
        results = []

        def waiter(env, tag):
            value = yield gate
            results.append((tag, value, env.now))

        for tag in range(5):
            env.process(waiter(env, tag))

        def opener(env):
            yield env.timeout(3.0)
            gate.succeed("go")

        env.process(opener(env))
        env.run()
        assert results == [(tag, "go", 3.0) for tag in range(5)]

    def test_condition_over_processes_and_timeouts(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return "quick"

        def proc(env):
            first = yield env.any_of(
                [env.process(quick(env)), env.timeout(10.0, value="slow")]
            )
            return sorted(first.values())

        assert env.run(until=env.process(proc(env))) == ["quick"]
        assert env.now == 1.0  # repro: noqa[RPR005] exact: determinism contract


class TestStoreBackPressure:
    def test_priority_store_respects_capacity(self):
        env = Environment()
        store = PriorityStore(env, capacity=2)
        sequence = []

        def producer(env):
            for value in (3, 1, 2):
                yield store.put((value,))
                sequence.append(("put", value, env.now))

        def consumer(env):
            yield env.timeout(10.0)
            while len(store):
                item = yield store.get()
                sequence.append(("got", item[0], env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        puts = [s for s in sequence if s[0] == "put"]
        gots = [s[1] for s in sequence if s[0] == "got"]
        # Third put blocked until the consumer drained capacity.
        assert puts[2][2] == 10.0
        assert gots == sorted(gots)

    def test_fifo_store_many_producers_consumers(self):
        env = Environment()
        store = Store(env, capacity=3)
        consumed = []

        def producer(env, base):
            for i in range(10):
                yield store.put(base + i)

        def consumer(env):
            while len(consumed) < 20:
                item = yield store.get()
                consumed.append(item)
                yield env.timeout(0.1)

        env.process(producer(env, 0))
        env.process(producer(env, 100))
        env.process(consumer(env))
        env.run()
        assert sorted(consumed) == sorted(
            list(range(10)) + list(range(100, 110))
        )


class TestClockDiscipline:
    def test_no_event_fires_after_until(self):
        env = Environment()
        fired = []

        def late(env):
            yield env.timeout(100.0)
            fired.append(env.now)

        env.process(late(env))
        env.run(until=50.0)
        assert fired == []
        assert env.now == 50.0  # repro: noqa[RPR005] exact: determinism contract
        env.run()  # resume to exhaustion
        assert fired == [100.0]

    def test_simulation_is_deterministic_across_runs(self):
        def build_and_run():
            env = Environment()
            log = []

            def chatty(env, tag, period):
                while env.now < 10.0:
                    yield env.timeout(period)
                    log.append((round(env.now, 6), tag))

            env.process(chatty(env, "a", 0.7))
            env.process(chatty(env, "b", 1.1))
            env.process(chatty(env, "c", 0.3))
            env.run(until=10.0)
            return log

        assert build_and_run() == build_and_run()
