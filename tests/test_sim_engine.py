"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 5.0
    assert env.now == 5.0  # repro: noqa[RPR005] exact: determinism contract


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="hello")
        return got

    assert env.run(until=env.process(proc(env))) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_zero_delay_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_same_time_ordering_is_schedule_order():
    env = Environment()
    seen = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        seen.append(tag)

    env.process(proc(env, "a", 3.0))
    env.process(proc(env, "b", 3.0))
    env.process(proc(env, "c", 1.0))
    env.run()
    assert seen == ["c", "a", "b"]


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result + 1

    assert env.run(until=env.process(parent(env))) == 43


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(until=env.process(parent(env))) == "caught boom"


def test_uncaught_process_exception_surfaces():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()

    def opener(env):
        yield env.timeout(3.0)
        gate.succeed("open sesame")

    def waiter(env):
        value = yield gate
        return (env.now, value)

    env.process(opener(env))
    assert env.run(until=env.process(waiter(env))) == (3.0, "open sesame")


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(KeyError("nope"))

    def waiter(env):
        try:
            yield gate
        except KeyError:
            return "failed as expected"

    env.process(failer(env))
    assert env.run(until=env.process(waiter(env))) == "failed as expected"


def test_wait_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()  # process the event fully

    def late(env):
        value = yield ev
        return value

    assert env.run(until=env.process(late(env))) == "early"


def test_interrupt_raises_interrupt_with_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(4.0)
        p.interrupt("wake up")

    env.process(interrupter(env))
    assert env.run(until=p) == ("interrupted", "wake up", 4.0)


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_keep_running():
    env = Environment()

    def resilient(env):
        total = 0.0
        try:
            yield env.timeout(50.0)
            total += 50.0
        except Interrupt:
            pass
        yield env.timeout(2.0)
        return env.now

    p = env.process(resilient(env))

    def interrupter(env):
        yield env.timeout(10.0)
        p.interrupt()

    env.process(interrupter(env))
    assert env.run(until=p) == 12.0


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        fired = yield env.any_of([t1, t2])
        return (env.now, list(fired.values()))

    assert env.run(until=env.process(proc(env))) == (2.0, ["fast"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        fired = yield env.all_of(events)
        return (env.now, sorted(fired.values()))

    assert env.run(until=env.process(proc(env))) == (3.0, [1.0, 2.0, 3.0])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    assert env.run(until=env.process(proc(env))) == {}


def test_run_until_time_stops_and_sets_clock():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=7.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    assert env.now == 7.5  # repro: noqa[RPR005] exact: determinism contract


def test_run_until_event_deadlock_detection():
    env = Environment()
    never = env.event()

    def waiter(env):
        yield never

    p = env.process(waiter(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="expected an Event"):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 0.0 or env.peek() <= 3.0  # timeouts scheduled at delays
    env.run()
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_condition_propagates_failure():
    env = Environment()
    good = env.timeout(5.0)
    bad = env.event()

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(ValueError("broken"))

    def waiter(env):
        try:
            yield env.all_of([good, bad])
        except ValueError:
            return "failed"

    env.process(failer(env))
    assert env.run(until=env.process(waiter(env))) == "failed"


def test_nested_processes_three_deep():
    env = Environment()

    def grandchild(env):
        yield env.timeout(1.0)
        return 1

    def child(env):
        value = yield env.process(grandchild(env))
        yield env.timeout(1.0)
        return value + 1

    def parent(env):
        value = yield env.process(child(env))
        yield env.timeout(1.0)
        return value + 1

    assert env.run(until=env.process(parent(env))) == 3
    assert env.now == 3.0  # repro: noqa[RPR005] exact: determinism contract


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0  # repro: noqa[RPR005] exact: determinism contract

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    assert env.run(until=env.process(proc(env))) == 105.0
