"""Kernel fast paths and the interrupt/condition fixes.

Covers the same-time FIFO lane (zero-delay events and process resumes
that skip the heap), the no-allocation resume on already-processed
targets, the interrupt callback-leak fix, and the AnyOf/AllOf
same-timestamp double-fire guards — on both the plain environment and
the instrumented (heap-only) sanitized one.
"""

import pytest

from repro.lint.sanitizer import SanitizedEnvironment
from repro.sim.engine import (
    Environment,
    Interrupt,
    SimulationError,
)

ENVS = [Environment, SanitizedEnvironment]


def _ids(cls):
    return cls.__name__


class TestSameTimeLane:
    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_zero_delay_chain_preserves_fifo_order(self, env_cls):
        env = env_cls()
        fired = []

        def proc(env, tag):
            for i in range(5):
                event = env.event()
                event.succeed((tag, i))
                got = yield event
                fired.append(got)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Scheduling order is firing order: the two processes interleave
        # deterministically, one yield per loop turn each.
        assert fired == [
            value for i in range(5) for value in (("a", i), ("b", i))
        ]
        assert env.now == 0.0  # repro: noqa[RPR005] exact: determinism contract

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_lane_and_heap_interleave_by_sequence(self, env_cls):
        env = env_cls()
        fired = []

        def late(env):
            yield env.timeout(1.0)
            fired.append("timeout")

        def immediate(env):
            event = env.event()
            event.succeed()
            yield event
            fired.append("immediate")
            yield env.timeout(2.0)
            fired.append("late-immediate")

        env.process(late(env))
        env.process(immediate(env))
        env.run()
        assert fired == ["immediate", "timeout", "late-immediate"]

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_yield_already_processed_event_delivers_value(self, env_cls):
        env = env_cls()
        done = env.event()
        done.succeed("payload")
        env.run()
        assert done.processed

        def proc(env):
            got = yield done
            return got

        assert env.run(env.process(proc(env))) == "payload"

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_yield_already_failed_event_raises(self, env_cls):
        env = env_cls()
        boom = env.event()
        boom.fail(RuntimeError("stale failure"))
        env.run()  # nobody waiting: the failure is parked on the event
        assert boom.processed and not boom.ok

        def proc(env):
            with pytest.raises(RuntimeError, match="stale failure"):
                yield boom
            return "survived"

        assert env.run(env.process(proc(env))) == "survived"

    def test_plain_and_sanitized_reach_identical_state(self):
        def workload(env, log):
            def worker(env, k):
                for i in range(3):
                    yield env.timeout(0.5 * k + 0.1)
                    gate = env.event()
                    gate.succeed(i)
                    got = yield gate
                    log.append((k, got, env.now))

            for k in range(4):
                env.process(worker(env, k))
            env.run()

        plain_log, sanitized_log = [], []
        plain = Environment()
        workload(plain, plain_log)
        sanitized = SanitizedEnvironment()
        workload(sanitized, sanitized_log)
        assert plain_log == sanitized_log
        assert plain.now == sanitized.now  # repro: noqa[RPR005] exact: determinism contract


class TestInterruptDetach:
    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_interrupt_detaches_stale_callback(self, env_cls):
        """Retry loops used to leak one dead callback per interrupt."""
        env = env_cls()
        gate = env.event()
        caught = []

        def waiter(env):
            while True:
                try:
                    yield gate
                except Interrupt:
                    caught.append(env.now)

        proc = env.process(waiter(env))

        def interrupter(env):
            for _ in range(50):
                yield env.timeout(1.0)
                proc.interrupt()

        env.process(interrupter(env))
        env.run(until=60.0)
        assert len(caught) == 50
        # Only the current wait's callback is attached; the 49 abandoned
        # waits were detached by interrupt().
        assert len(gate.callbacks) == 1

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_interrupted_wait_still_fires_for_other_waiters(self, env_cls):
        env = env_cls()
        gate = env.event()
        log = []

        def patient(env):
            got = yield gate
            log.append(("patient", got))

        def impatient(env):
            try:
                yield gate
            except Interrupt:
                log.append(("impatient", "interrupted"))

        env.process(patient(env))
        proc = env.process(impatient(env))

        def driver(env):
            yield env.timeout(1.0)
            proc.interrupt()
            yield env.timeout(1.0)
            gate.succeed("value")

        env.process(driver(env))
        env.run()
        assert log == [("impatient", "interrupted"), ("patient", "value")]

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_interrupt_after_pending_delivery_keeps_value(self, env_cls):
        """A resume already in flight (processed-target delivery) is not
        cancelled by an interrupt scheduled after it — matching the
        pre-fast-path ordering, the value lands first and the Interrupt
        is thrown at the following yield."""
        env = env_cls()
        done = env.event()
        done.succeed("first")
        env.run()
        log = []

        def victim(env):
            got = yield done  # already processed: delivery is in flight
            log.append(got)
            try:
                yield env.timeout(10.0)
            except Interrupt as intr:
                log.append(f"interrupted:{intr.cause}")

        proc = env.process(victim(env))

        def driver(env):
            if False:  # pragma: no cover - make this a generator
                yield
            proc.interrupt("late")
            return
            yield

        # Interrupt at t=0, scheduled after the bootstrap but before the
        # delivery has run.
        env.process(driver(env))
        env.run()
        assert log == ["first", "interrupted:late"]

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_interrupt_finished_process_is_error(self, env_cls):
        env = env_cls()

        def quick(env):
            yield env.timeout(1.0)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestConditionSameTimestamp:
    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_allof_two_failures_same_timestamp(self, env_cls):
        """Regression: the second same-time failure used to call fail()
        on the already-failed condition."""
        env = env_cls()
        first, second = env.event(), env.event()
        outcome = []

        def waiter(env):
            try:
                yield env.all_of([first, second])
            except RuntimeError as exc:
                outcome.append(str(exc))

        env.process(waiter(env))

        def failer(env):
            yield env.timeout(1.0)
            first.fail(RuntimeError("first failure"))
            second.fail(RuntimeError("second failure"))

        env.process(failer(env))
        env.run()
        assert outcome == ["first failure"]

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_allof_failure_and_success_same_timestamp(self, env_cls):
        env = env_cls()
        ok, bad = env.event(), env.event()
        outcome = []

        def waiter(env):
            try:
                yield env.all_of([bad, ok])
            except RuntimeError as exc:
                outcome.append(str(exc))

        env.process(waiter(env))

        def driver(env):
            yield env.timeout(1.0)
            bad.fail(RuntimeError("boom"))
            ok.succeed("fine")

        env.process(driver(env))
        env.run()
        assert outcome == ["boom"]

    @pytest.mark.parametrize("env_cls", ENVS, ids=_ids)
    def test_anyof_two_successes_same_timestamp(self, env_cls):
        env = env_cls()
        a, b = env.event(), env.event()
        got = []

        def waiter(env):
            value = yield env.any_of([a, b])
            got.append(value)

        env.process(waiter(env))

        def driver(env):
            yield env.timeout(1.0)
            a.succeed("a")
            b.succeed("b")

        env.process(driver(env))
        env.run()
        assert got == [{a: "a"}]
