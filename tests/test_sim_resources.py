"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, SimulationError, Store


def test_resource_capacity_limits_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(env, tag):
        req = res.request()
        yield req
        active.append(tag)
        peak.append(len(active))
        yield env.timeout(10.0)
        active.remove(tag)
        res.release(req)

    for tag in range(5):
        env.process(worker(env, tag))
    env.run()
    assert max(peak) == 2
    assert env.now == 30.0  # 5 jobs of 10s through 2 slots: ceil(5/2)*10  # repro: noqa[RPR005] exact: determinism contract


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, tag, arrival):
        yield env.timeout(arrival)
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(5.0)
        res.release(req)

    env.process(worker(env, "first", 0.0))
    env.process(worker(env, "second", 1.0))
    env.process(worker(env, "third", 2.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_pending_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    assert held.triggered
    pending = res.request()
    assert not pending.triggered
    res.release(pending)  # cancel before grant
    res.release(held)
    assert res.count == 0


def test_resource_release_unknown_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    stranger = env.event()
    with pytest.raises(SimulationError):
        res.release(stranger)


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_count_and_queued():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    res.request()
    assert res.count == 1
    assert res.queued == 1
    res.release(r1)
    assert res.count == 1  # queued request was granted
    assert res.queued == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env):
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append(item)
        return got

    env.process(producer(env))
    assert env.run(until=env.process(consumer(env))) == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(7.0)
        yield store.put("late")

    env.process(producer(env))
    assert env.run(until=env.process(consumer(env))) == (7.0, "late")


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    timeline = []

    def producer(env):
        yield store.put("a")
        timeline.append(("a", env.now))
        yield store.put("b")  # blocks until "a" is taken
        timeline.append(("b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert timeline == [("a", 0.0), ("b", 5.0)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    g = store.get()
    store.cancel_get(g)
    store.put("x")
    env.run()
    assert not g.triggered
    assert len(store) == 1


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_priority_store_pops_smallest():
    env = Environment()
    store = PriorityStore(env)
    for value in (5, 1, 3):
        store.put((value, f"task{value}"))

    def consumer(env):
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append(item[0])
        return got

    assert env.run(until=env.process(consumer(env))) == [1, 3, 5]


def test_priority_store_blocks_when_empty():
    env = Environment()
    store = PriorityStore(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(2.0)
        yield store.put((1, "only"))

    env.process(producer(env))
    assert env.run(until=env.process(consumer(env))) == (2.0, (1, "only"))


def test_priority_store_items_sorted_view():
    env = Environment()
    store = PriorityStore(env)
    for value in (9, 2, 7):
        store.put((value,))
    assert store.items == [(2,), (7,), (9,)]
    assert len(store) == 3
