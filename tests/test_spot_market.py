"""The seeded spot market: determinism, spikes, bid strategies."""

import numpy as np
import pytest

from repro.cloud.spot import BidStrategy, SpotMarketModel, SpotPriceTrace


def make_trace(seed=7, model=None, on_demand=0.68):
    return SpotPriceTrace(
        model or SpotMarketModel(), on_demand, np.random.default_rng(seed)
    )


class TestSpotPriceTrace:
    def test_same_seed_same_trace(self):
        a, b = make_trace(3), make_trace(3)
        times = [0.0, 900.0, 4500.0, 150.0, 9000.0]
        assert [a.price_at(t) for t in times] == [
            b.price_at(t) for t in times
        ]

    def test_query_order_does_not_change_the_trace(self):
        forward, backward = make_trace(11), make_trace(11)
        times = [float(i * 300) for i in range(20)]
        prices_forward = [forward.price_at(t) for t in times]
        prices_backward = [
            backward.price_at(t) for t in reversed(times)
        ]
        assert prices_forward == list(reversed(prices_backward))

    def test_piecewise_constant_within_interval(self):
        trace = make_trace(5)
        assert trace.price_at(0.0) == trace.price_at(299.9)

    def test_always_spiking_market_prices_above_bid(self):
        model = SpotMarketModel(spike_probability=1.0)
        trace = make_trace(model=model)
        expected = 0.68 * model.price_fraction * model.spike_multiplier
        # A spike lasts two intervals, then the market gets one calm
        # interval before (with probability 1 here) the next one starts:
        # spike, spike, gap, spike, spike, gap, ...
        for t in (0.0, 300.0, 900.0, 1200.0):
            assert trace.price_at(t) == pytest.approx(expected)
        assert trace.price_at(0.0) > BidStrategy.spot().bid_price(0.68)
        assert trace.price_at(600.0) < expected  # the gap interval

    def test_calm_market_never_exceeds_on_demand(self):
        model = SpotMarketModel(spike_probability=0.0)
        trace = make_trace(model=model)
        for i in range(50):
            assert trace.price_at(i * 300.0) <= 0.68

    def test_next_change_after(self):
        trace = make_trace()
        assert trace.next_change_after(0.0) == 300.0
        assert trace.next_change_after(299.9) == 300.0
        assert trace.next_change_after(300.0) == 600.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make_trace().price_at(-1.0)


class TestBidStrategy:
    def test_mixed_degenerates_at_extremes(self):
        assert BidStrategy.mixed(0.0).kind == "on-demand"
        assert BidStrategy.mixed(1.0).kind == "spot"
        assert BidStrategy.mixed(0.5).kind == "mixed"

    def test_split(self):
        assert BidStrategy.on_demand().split(5) == (0, 5)
        assert BidStrategy.spot().split(5) == (5, 0)
        assert BidStrategy.mixed(0.5).split(5) == (2, 3)
        assert BidStrategy.mixed(0.75).split(4) == (3, 1)

    def test_bid_price(self):
        assert BidStrategy.spot(bid_multiplier=0.4).bid_price(0.68) == (
            pytest.approx(0.272)
        )

    def test_uses_spot(self):
        assert not BidStrategy.on_demand().uses_spot
        assert BidStrategy.spot().uses_spot
        assert BidStrategy.mixed(0.3).uses_spot

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            BidStrategy(kind="futures")
        with pytest.raises(ValueError, match="spot_fraction"):
            BidStrategy(kind="mixed", spot_fraction=1.5)
        with pytest.raises(ValueError, match="bid_multiplier"):
            BidStrategy(kind="spot", spot_fraction=1.0, bid_multiplier=0.0)


def test_price_fraction_anchored_to_the_price_book():
    from repro.cloud.pricing import AWS_PRICES

    assert SpotMarketModel().price_fraction == (
        AWS_PRICES.spot_discount_fraction
    )
    assert AWS_PRICES.spot_baseline(0.68) == pytest.approx(
        0.68 * AWS_PRICES.spot_discount_fraction
    )


def test_model_validation():
    with pytest.raises(ValueError):
        SpotMarketModel(price_fraction=0.0)
    with pytest.raises(ValueError):
        SpotMarketModel(spike_probability=1.5)
    with pytest.raises(ValueError):
        SpotMarketModel(interval_s=0.0)
    with pytest.raises(ValueError):
        SpotMarketModel(spike_multiplier=0.5)
