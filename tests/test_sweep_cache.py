"""Content-addressed cache: key sensitivity, hit/miss counters, policy.

The cache key must move when anything that could change a point's
result moves — any perf-model coefficient, any backend config field,
the task set, the version salt — and must NOT move for an identical
rerun.  All assertions go through the ``stats()`` counters, the same
surface ``python -m repro cache stats`` exposes.
"""

import dataclasses
import json

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.sweep.cache import ResultCache, default_cache
from repro.sweep.fingerprint import cache_key, point_fingerprint, task_digest
from repro.sweep.points import point_for, run_point
from repro.workloads.genome import cap3_task_specs


def _tasks():
    return cap3_task_specs(4, reads_per_file=100)


def _backend(**overrides):
    kwargs = dict(
        instance_type="HCXL",
        n_instances=2,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
        seed=17,
    )
    kwargs.update(overrides)
    return make_backend("ec2", **kwargs)


def _spec(app=None, backend=None, tasks=None):
    return point_for(
        app or get_application("cap3"),
        backend or _backend(),
        tasks if tasks is not None else _tasks(),
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeySensitivity:
    def test_identical_rerun_hits(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        assert cache.get(_spec()) is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 0, 1)
        assert stats.entries == 1

    def test_perf_model_field_change_misses(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        app = get_application("cap3")
        tweaked = dataclasses.replace(
            app,
            perf_model=dataclasses.replace(
                app.perf_model,
                cpu_ghz_seconds_per_unit=(
                    app.perf_model.cpu_ghz_seconds_per_unit * 1.01
                ),
            ),
        )
        assert cache.get(_spec(app=tweaked)) is None
        assert cache.stats().misses == 1

    def test_backend_config_field_change_misses(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        assert cache.get(_spec(backend=_backend(seed=18))) is None
        assert cache.get(_spec(backend=_backend(n_instances=4))) is None
        assert cache.get(
            _spec(backend=_backend(instance_type="XL", workers_per_instance=4))
        ) is None
        assert cache.stats().misses == 3

    def test_task_set_change_misses(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        tasks = _tasks()
        tasks[0] = dataclasses.replace(
            tasks[0], work_units=tasks[0].work_units + 1
        )
        assert cache.get(_spec(tasks=tasks)) is None
        assert cache.get(_spec(tasks=_tasks()[:-1])) is None
        assert cache.stats().misses == 2

    def test_salt_change_misses(self, cache, monkeypatch):
        spec = _spec()
        cache.put(spec, run_point(spec))
        monkeypatch.setattr(
            "repro.sweep.fingerprint.CACHE_SALT", "repro-sweep-v999"
        )
        assert cache.get(_spec()) is None
        assert cache.stats().misses == 1

    def test_task_digest_covers_every_field(self):
        tasks = _tasks()
        base = task_digest(tasks)
        for field in (
            "task_id", "input_key", "output_key", "input_size",
            "output_size", "work_units",
        ):
            value = getattr(tasks[0], field)
            bumped = value + 1 if isinstance(value, (int, float)) \
                else value + "x"
            mutated = [dataclasses.replace(tasks[0], **{field: bumped})] \
                + tasks[1:]
            assert task_digest(mutated) != base, field


class TestCacheStore:
    def test_roundtrip_preserves_result(self, cache):
        spec = _spec()
        result = run_point(spec)
        cache.put(spec, result)
        assert cache.get(spec) == result

    def test_corrupted_entry_degrades_to_miss(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        path = cache._path_for(cache_key(point_fingerprint(spec)))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_fingerprint_mismatch_degrades_to_miss(self, cache):
        """A hash collision (or hand-edited file) must not serve a wrong
        result: the stored fingerprint is verified on read."""
        spec = _spec()
        cache.put(spec, run_point(spec))
        path = cache._path_for(cache_key(point_fingerprint(spec)))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["fingerprint"]["salt"] = "tampered"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(spec) is None

    def test_clear_empties_the_store(self, cache):
        spec = _spec()
        cache.put(spec, run_point(spec))
        assert cache.clear() == 1
        assert cache.stats().entries == 0
        assert cache.get(spec) is None


class TestDefaultCachePolicy:
    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert default_cache() is None

    def test_cache_dir_env_relocates(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = default_cache()
        assert cache is not None
        assert cache.root == tmp_path / "elsewhere"

    def test_explicit_root_wins(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = default_cache(tmp_path / "explicit")
        assert cache.root == tmp_path / "explicit"
