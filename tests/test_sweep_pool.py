"""Persistent sweep pool: lifecycle, reuse, chunking, and parity.

The pool exists so repeated ``run_points`` calls stop paying a fresh
``ProcessPoolExecutor`` spawn per call; the tests here pin down that it
is (a) lazy, (b) actually reused, (c) chunked deterministically, and
(d) byte-for-byte identical to the serial and pre-pool paths.
"""

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.sweep.points import point_for, run_point
from repro.sweep.pool import SweepPool, shared_pool, shutdown_shared_pool
from repro.sweep.runner import _chunk_pending, run_points
from repro.workloads.genome import cap3_task_specs

_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _points(count=4):
    app = get_application("cap3")
    tasks = cap3_task_specs(24, reads_per_file=200)
    backends = [
        make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
            fault_plan=FaultPlan.none(),
            seed=17,
        )
        for itype, n, w in _SHAPES[:count]
    ]
    return [point_for(app, b, tasks) for b in backends]


class TestLifecycle:
    def test_pool_is_lazy(self):
        pool = SweepPool(2)
        assert not pool.started
        assert pool.spawns == 0
        pool.close()  # closing a never-started pool is a no-op
        assert pool.spawns == 0

    def test_context_manager_closes(self):
        with SweepPool(2) as pool:
            future = pool.submit_chunk(_points(1))
            assert len(future.result()) == 1
            assert pool.started
        assert not pool.started

    def test_pool_restarts_after_close(self):
        pool = SweepPool(2)
        first = pool.submit_chunk(_points(1)).result()
        pool.close()
        second = pool.submit_chunk(_points(1)).result()
        pool.close()
        assert repr(first) == repr(second)
        assert pool.spawns == 2

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            SweepPool(0)
        with pytest.raises(TypeError):
            SweepPool(2.5)
        with pytest.raises(TypeError):
            SweepPool(True)


class TestReuse:
    def test_submissions_reuse_warm_executor(self):
        with SweepPool(2) as pool:
            pool.submit_chunk(_points(1)).result()
            pool.submit_chunk(_points(1)).result()
            pool.submit_chunk(_points(1)).result()
            stats = pool.stats()
        assert stats["spawns"] == 1
        assert stats["submissions"] == 3
        assert stats["reuses"] == 2

    def test_shared_pool_is_a_singleton_per_worker_count(self):
        shutdown_shared_pool()
        try:
            a = shared_pool(2)
            b = shared_pool(2)
            assert a is b
            c = shared_pool(3)
            assert c is not a
            assert c.workers == 3
        finally:
            shutdown_shared_pool()

    def test_run_points_reuses_shared_pool_across_calls(self):
        shutdown_shared_pool()
        try:
            points = _points(4)
            run_points(points, jobs=2)
            pool = shared_pool(2)
            spawns_after_first = pool.spawns
            run_points(points, jobs=2)
            assert shared_pool(2) is pool
            assert pool.spawns == spawns_after_first  # warm, not respawned
            assert pool.reuses > 0
        finally:
            shutdown_shared_pool()


class TestChunking:
    def test_chunks_are_contiguous_and_cover_input(self):
        pending = [(i, f"p{i}") for i in range(10)]
        chunks = _chunk_pending(pending, 3)
        flat = [item for chunk in chunks for item in chunk]
        assert flat == pending  # order preserved, nothing lost
        assert all(chunk for chunk in chunks)
        assert len(chunks) <= 6  # workers * chunks-per-worker

    def test_chunk_sizes_balanced(self):
        pending = [(i, f"p{i}") for i in range(11)]
        sizes = [len(c) for c in _chunk_pending(pending, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_points_than_workers(self):
        pending = [(0, "p0"), (1, "p1")]
        chunks = _chunk_pending(pending, 8)
        assert [len(c) for c in chunks] == [1, 1]


class TestParity:
    def test_pool_results_match_serial_and_direct(self):
        points = _points(4)
        direct = [run_point(p) for p in points]
        serial = run_points(points, jobs=1)
        with SweepPool(4) as pool:
            pooled = run_points(points, jobs=4, pool=pool)
        assert repr(serial) == repr(direct)
        assert repr(pooled) == repr(direct)

    def test_explicit_pool_is_not_closed_by_run_points(self):
        points = _points(2)
        with SweepPool(2) as pool:
            run_points(points, jobs=2, pool=pool)
            assert pool.started  # caller owns the lifecycle
            run_points(points, jobs=2, pool=pool)
            assert pool.stats()["submissions"] >= 2

    def test_sanitizer_forces_inline_execution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        points = _points(2)
        with SweepPool(2) as pool:
            results = run_points(points, jobs=2, pool=pool)
            assert not pool.started  # everything ran inline
        monkeypatch.delenv("REPRO_SANITIZE")
        assert repr(results) == repr(run_points(points, jobs=1))
