"""Sweep runner: parallel/serial identity, ordering, fallbacks, policy.

The load-bearing property is satellite-grade: the Fig 3/4 Cap3 instance
study must return *identical* rows at ``jobs=4`` and ``jobs=1``, and
both must match the pre-sweep sequential path byte-for-byte.
"""

import dataclasses

import pytest

from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.experiment import InstanceStudyRow, instance_type_study
from repro.core.metrics import average_time_per_file_per_core
from repro.sweep.cache import ResultCache
from repro.sweep.points import InlinePoint, PointSpec, point_for
from repro.sweep.runner import resolve_jobs, run_points
from repro.workloads.genome import cap3_task_specs

# Fig 3/4 shapes, scaled down to keep the study fast.
_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _backends():
    return [
        make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
            fault_plan=FaultPlan.none(),
            seed=17,
        )
        for itype, n, w in _SHAPES
    ]


def _tasks():
    return cap3_task_specs(24, reads_per_file=200)


def _pre_pr_rows(app, backends, tasks):
    """The seed repo's sequential instance_type_study, verbatim."""
    rows = []
    for backend in backends:
        result = backend.run(app, tasks)
        billing = result.billing
        label = getattr(
            getattr(backend, "config", None), "label", backend.name
        )
        rows.append(
            InstanceStudyRow(
                label=label,
                compute_time_s=result.makespan_seconds,
                compute_cost=billing.compute_cost if billing else 0.0,
                amortized_cost=(
                    billing.total_amortized_cost if billing else 0.0
                ),
                total_cost=billing.total_cost if billing else 0.0,
                per_core_time_s=average_time_per_file_per_core(
                    result.makespan_seconds, backend.total_cores, len(tasks)
                ),
            )
        )
    return rows


class TestParallelSerialIdentity:
    def test_fig3_4_study_identical_at_any_job_count(self):
        app = get_application("cap3")
        tasks = _tasks()
        serial = instance_type_study(app, _backends(), tasks, jobs=1)
        parallel = instance_type_study(app, _backends(), tasks, jobs=4)
        reference = _pre_pr_rows(app, _backends(), tasks)
        assert serial == parallel
        assert serial == reference
        # Byte-for-byte, not merely approximately equal.
        assert repr(serial) == repr(reference)

    def test_scalability_study_identical_at_any_job_count(self):
        from repro.core.experiment import scalability_study

        app = get_application("cap3")

        def factory(cores):
            return make_backend(
                "ec2",
                n_instances=cores // 8,
                fault_plan=FaultPlan.none(),
                seed=17,
            )

        def tasks_for(cores):
            return cap3_task_specs(cores, reads_per_file=200)

        serial = scalability_study(app, factory, [16, 32], tasks_for, jobs=1)
        parallel = scalability_study(
            app, factory, [16, 32], tasks_for, jobs=4
        )
        assert serial == parallel


class TestRunPoints:
    def test_results_come_back_in_input_order(self):
        app = get_application("cap3")
        tasks = _tasks()
        points = [point_for(app, b, tasks) for b in _backends()]
        results = run_points(points, jobs=4)
        assert [r.label for r in results] == [
            getattr(b.config, "label") for b in _backends()
        ]

    def test_cache_hits_skip_execution(self, tmp_path):
        app = get_application("cap3")
        tasks = _tasks()
        points = [point_for(app, b, tasks) for b in _backends()]
        cache = ResultCache(tmp_path)
        cold = run_points(points, jobs=1, cache=cache)
        warm = run_points(points, jobs=1, cache=cache)
        assert cold == warm
        stats = cache.stats()
        assert stats.stores == len(points)
        assert stats.hits == len(points)

    def test_mixed_hits_and_misses_keep_order(self, tmp_path):
        app = get_application("cap3")
        tasks = _tasks()
        points = [point_for(app, b, tasks) for b in _backends()]
        cache = ResultCache(tmp_path)
        # Pre-warm only the middle two points.
        run_points(points[1:3], jobs=1, cache=cache)
        results = run_points(points, jobs=4, cache=cache)
        assert [r.label for r in results] == [p.label for p in points]

    def test_sanitize_env_bypasses_cache(self, tmp_path, monkeypatch):
        app = get_application("cap3")
        tasks = _tasks()
        spec = point_for(app, _backends()[0], tasks)
        cache = ResultCache(tmp_path)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        run_points([spec], jobs=1, cache=cache)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)
        assert stats.entries == 0


class _StubBackend:
    """A backend the spec registry cannot describe."""

    name = "stub"
    total_cores = 3

    def run(self, app, tasks):
        from repro.core.task import RunResult

        return RunResult(
            backend=self.name,
            app_name=app.name,
            n_tasks=len(tasks),
            makespan_seconds=42.0,
        )

    def estimate_sequential_time(self, app, tasks):
        return 126.0


class TestInlineFallback:
    def test_unknown_backend_goes_inline(self):
        app = get_application("cap3")
        point = point_for(app, _StubBackend(), _tasks())
        assert isinstance(point, InlinePoint)

    def test_inline_points_run_uncached(self, tmp_path):
        app = get_application("cap3")
        point = point_for(app, _StubBackend(), _tasks())
        cache = ResultCache(tmp_path)
        results = run_points([point], jobs=4, cache=cache)
        assert results[0].makespan_s == 42.0
        assert results[0].cores == 3
        assert results[0].billed is False
        assert cache.stats().stores == 0

    def test_simulated_backends_are_specable(self):
        app = get_application("cap3")
        tasks = _tasks()
        for name, kwargs in (
            ("ec2", {"fault_plan": FaultPlan.none()}),
            ("azure", {"fault_plan": FaultPlan.none()}),
            ("hadoop", {}),
            ("dryadlinq", {}),
        ):
            backend = make_backend(name, **kwargs)
            assert isinstance(point_for(app, backend, tasks), PointSpec), name


class TestProgress:
    def _points(self, count=2):
        app = get_application("cap3")
        tasks = _tasks()
        return [point_for(app, b, tasks) for b in _backends()[:count]]

    def test_serial_emits_start_then_done_per_point(self):
        events = []
        run_points(self._points(), jobs=1, progress=events.append)
        assert [(e.index, e.status) for e in events] == [
            (0, "start"), (0, "done"), (1, "start"), (1, "done"),
        ]
        assert all(e.total == 2 for e in events)
        assert events[0].label == events[1].label

    def test_pool_run_notifies_every_point(self):
        events = []
        run_points(self._points(), jobs=2, progress=events.append)
        assert sorted(
            (e.index, e.status) for e in events
        ) == [(0, "done"), (0, "start"), (1, "done"), (1, "start")]

    def test_cache_hit_emits_single_event(self, tmp_path):
        points = self._points(1)
        cache = ResultCache(tmp_path)
        run_points(points, jobs=1, cache=cache)
        events = []
        run_points(points, jobs=1, cache=cache, progress=events.append)
        assert [(e.index, e.status, e.total) for e in events] == [
            (0, "cache-hit", 1)
        ]

    def test_chunked_dispatch_with_mixed_cache_hits_orders_events(
        self, tmp_path
    ):
        """Cache hits and pool-executed points interleave deterministically.

        With points 1 and 2 pre-cached out of 4, a ``jobs=2`` run must:
        emit exactly one ``cache-hit`` per cached point, before any
        ``start`` (hits resolve during the scan, dispatch comes after);
        emit ``start`` then ``done`` for each executed point; and stream
        the ``done`` events in input order, because chunk futures are
        collected in submission order, never completion order.
        """
        points = self._points(4)
        cache = ResultCache(tmp_path)
        serial = run_points([points[1], points[2]], jobs=1, cache=cache)
        events = []
        results = run_points(
            points, jobs=2, cache=cache, progress=events.append
        )
        assert [results[1], results[2]] == serial  # served from cache
        by_status = {}
        for position, event in enumerate(events):
            by_status.setdefault(event.status, []).append(
                (position, event.index)
            )
        assert [idx for _, idx in by_status["cache-hit"]] == [1, 2]
        assert [idx for _, idx in by_status["done"]] == [0, 3]
        first_start = min(pos for pos, _ in by_status["start"])
        assert all(pos < first_start for pos, _ in by_status["cache-hit"])
        for index in (0, 3):
            started = next(
                pos for pos, i in by_status["start"] if i == index
            )
            finished = next(
                pos for pos, i in by_status["done"] if i == index
            )
            assert started < finished
        assert all(e.total == 4 for e in events)
        # Parity: the mixed run returns exactly what a cold serial run does.
        assert results == run_points(points, jobs=1)

    def test_inline_points_report_progress(self):
        app = get_application("cap3")
        point = point_for(app, _StubBackend(), _tasks())
        events = []
        run_points([point], jobs=1, progress=events.append)
        assert [(e.label, e.status) for e in events] == [
            ("stub", "start"), ("stub", "done"),
        ]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(None) == 7

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)

    def test_zero_and_negative_args_raise(self):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs(0)
        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs(-5)

    def test_non_integer_args_raise(self):
        with pytest.raises(TypeError, match="positive integer"):
            resolve_jobs(2.5)
        with pytest.raises(TypeError, match="positive integer"):
            resolve_jobs("4")
        with pytest.raises(TypeError, match="positive integer"):
            resolve_jobs(True)

    def test_garbage_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    @pytest.mark.parametrize("value", ["0", "-3", "2.5", " "])
    def test_invalid_env_values_raise(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", value)
        if value.strip():
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                resolve_jobs(None)
        else:
            # Pure whitespace degrades to "unset", not an error.
            assert resolve_jobs(None) >= 1
