"""Tests for the runtime thread sanitizer (repro.lint.threadsan).

The centrepiece is the regression pair the sanitizer exists for: a
fixture runtime with a *deliberate* lock-order inversion and a
*deliberate* unsynchronized shared-dict write must produce exactly
those two findings — and the shipped threaded runtimes must stay
silent under the same instrumentation.
"""

import threading

import pytest

from repro.lint import threadsan
from repro.lint.threadsan import (
    LOCK_ORDER_CODE,
    RACE_CODE,
    MonitoredLock,
    ThreadSanitizer,
)


@pytest.fixture
def sanitizer():
    san = threadsan.install(ThreadSanitizer())
    yield san
    threadsan.uninstall()


class BuggyRuntime:
    """A fixture runtime seeded with the two classic concurrency bugs.

    * ``run_inversion`` acquires its two locks in opposite orders on two
      paths (serialized by a join so the test itself cannot deadlock);
    * ``run_race`` lets two workers write one shared dict with no lock.
    """

    def __init__(self) -> None:
        self.lock_a = threadsan.monitor_lock("BuggyRuntime.lock_a")
        self.lock_b = threadsan.monitor_lock("BuggyRuntime.lock_b")
        self.shared = threadsan.monitor({}, "BuggyRuntime.shared")

    def run_inversion(self) -> None:
        def forward():
            with self.lock_a:
                with self.lock_b:  # repro: noqa[RPR102] seeded on purpose
                    pass

        def backward():
            with self.lock_b:
                with self.lock_a:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join()
        second = threading.Thread(target=backward)
        second.start()
        second.join()

    def run_race(self) -> None:
        # Barrier: both writers must be alive at once, else the OS may
        # reuse the first thread's ident for the second and the writes
        # would look single-threaded to the sanitizer.
        ready = threading.Barrier(2)

        def writer(worker: int) -> None:
            ready.wait()
            for i in range(100):
                self.shared[f"{worker}-{i}"] = i

        workers = [
            threading.Thread(target=writer, args=(n,)) for n in range(2)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()


class TestSeededBugs:
    def test_seeded_lock_inversion_is_reported(self, sanitizer):
        BuggyRuntime().run_inversion()
        report = sanitizer.report()
        assert len(report.lock_inversions) == 1
        (finding,) = report.lock_inversions
        assert finding.code == LOCK_ORDER_CODE
        assert "BuggyRuntime.lock_a" in finding.message
        assert "BuggyRuntime.lock_b" in finding.message

    def test_seeded_unsynchronized_write_is_reported(self, sanitizer):
        BuggyRuntime().run_race()
        report = sanitizer.report()
        assert len(report.races) == 1
        (finding,) = report.races
        assert finding.code == RACE_CODE
        assert "BuggyRuntime.shared" in finding.message

    def test_both_bugs_in_one_run(self, sanitizer):
        runtime = BuggyRuntime()
        runtime.run_inversion()
        runtime.run_race()
        report = sanitizer.report()
        assert len(report.lock_inversions) == 1
        assert len(report.races) == 1
        assert len(report.issues) == 2

    def test_findings_flow_through_report_machinery(self, sanitizer):
        from repro.lint import format_human, format_json
        import json

        BuggyRuntime().run_race()
        result = sanitizer.report().to_lint_result()
        assert RACE_CODE in format_human(result)
        payload = json.loads(format_json(result))
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == RACE_CODE


class TestShippedRuntimesStaySilent:
    def test_local_classiccloud_is_clean(self, sanitizer, tmp_path):
        from repro.apps.executables import Cap3Executable
        from repro.classiccloud.local import LocalClassicCloud
        from repro.workloads.genome import write_cap3_workload

        tasks = write_cap3_workload(tmp_path, n_files=6, reads_per_file=4)
        result = LocalClassicCloud(n_workers=3).run(Cap3Executable(), tasks)
        assert result.n_tasks == 6
        report = sanitizer.report()
        assert report.issues == [], report.summary()
        # The instrumentation actually saw the run, not a no-op pass.
        assert report.locks_tracked >= 2
        assert report.writes_observed > 0

    def test_local_blob_store_is_clean(self, sanitizer, tmp_path):
        from repro.classiccloud.localstore import LocalBlobStore

        store = LocalBlobStore(tmp_path / "store")

        def uploader(worker: int) -> None:
            for i in range(5):
                store.put_bytes(f"w{worker}/obj{i}", b"payload")

        workers = [
            threading.Thread(target=uploader, args=(n,)) for n in range(3)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert store.stats["puts"] == 15
        report = sanitizer.report()
        assert report.issues == [], report.summary()


class TestActivation:
    def test_monitor_is_passthrough_when_inactive(self):
        if threadsan.active() is not None:
            pytest.skip("--repro-sanitize-threads keeps a sanitizer installed")
        assert threadsan.active() is None
        payload = {"a": 1}
        assert threadsan.monitor(payload, "x") is payload
        lock = threadsan.monitor_lock("x")
        assert isinstance(lock, type(threading.Lock()))

    def test_env_token_activates_ambient_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "threads")
        try:
            assert threadsan.active() is not None
            assert isinstance(threadsan.monitor_lock("x"), MonitoredLock)
        finally:
            threadsan.uninstall()

    def test_threads_token_does_not_enable_des_sanitizer(self, monkeypatch):
        from repro.lint.sanitizer import SanitizedEnvironment
        from repro.sim.engine import make_environment

        monkeypatch.setenv("REPRO_SANITIZE", "threads")
        env = make_environment()
        assert not isinstance(env, SanitizedEnvironment)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert isinstance(make_environment(), SanitizedEnvironment)
        monkeypatch.setenv("REPRO_SANITIZE", "all")
        assert isinstance(make_environment(), SanitizedEnvironment)

    def test_monitored_lock_supports_lock_protocol(self, sanitizer):
        lock = threadsan.monitor_lock("proto")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        with lock:
            assert lock.locked()

    def test_reentrant_same_lock_is_not_an_inversion(self, sanitizer):
        lock = threadsan.monitor_lock("outer")
        other = threadsan.monitor_lock("inner")
        with lock:
            with other:
                pass
        with lock:
            with other:
                pass
        assert sanitizer.report().lock_inversions == []

    def test_exclusive_phase_setup_is_amnestied(self, sanitizer):
        # Unlocked single-threaded setup, then locked multi-thread use:
        # the classic init pattern must not be flagged.
        guard = threadsan.monitor_lock("guard")
        shared = threadsan.monitor({}, "state")
        for i in range(10):
            shared[i] = i  # main thread, no lock: exclusive phase

        def worker(base: int) -> None:
            for i in range(10):
                with guard:
                    shared[base + i] = i

        workers = [
            threading.Thread(target=worker, args=(100 * (n + 1),))
            for n in range(2)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert sanitizer.report().races == []
