"""Tests for the TwisterAzure iterative-MapReduce extension."""

import numpy as np
import pytest

from repro.twister import (
    IterativeMapReduce,
    MapReduceJob,
    TwisterAzureSimulator,
    TwisterSimConfig,
    kmeans_mapreduce,
)


class TestMapReduceJob:
    def test_word_count(self):
        docs = ["a b a", "b c", "a"]
        job = MapReduceJob(
            map_fn=lambda doc: [(w, 1) for w in doc.split()],
            reduce_fn=lambda key, values: sum(values),
        )
        assert job.run(docs, n_workers=2) == {"a": 3, "b": 2, "c": 1}

    def test_combiner_preserves_result(self):
        docs = ["x y x"] * 20
        job_plain = MapReduceJob(
            map_fn=lambda doc: [(w, 1) for w in doc.split()],
            reduce_fn=lambda key, values: sum(values),
        )
        job_combined = MapReduceJob(
            map_fn=lambda doc: [(w, 1) for w in doc.split()],
            reduce_fn=lambda key, values: sum(values),
            combiner=lambda key, values: sum(values),
        )
        assert job_plain.run(docs) == job_combined.run(docs)

    def test_empty_input(self):
        job = MapReduceJob(lambda x: [(x, 1)], lambda k, v: sum(v))
        assert job.run([]) == {}

    def test_parallel_matches_serial(self):
        items = list(range(100))
        job = MapReduceJob(
            map_fn=lambda x: [(x % 7, x)],
            reduce_fn=lambda key, values: sum(values),
        )
        assert job.run(items, n_workers=1) == job.run(items, n_workers=8)

    def test_validation(self):
        job = MapReduceJob(lambda x: [(x, 1)], lambda k, v: sum(v))
        with pytest.raises(ValueError):
            job.run([1], n_workers=0)
        with pytest.raises(ValueError):
            job.run([1], n_map_partitions=0)


class TestIterativeMapReduce:
    def make_engine(self):
        # Distributed mean estimation: state converges to the data mean.
        return IterativeMapReduce(
            map_fn=lambda part, state: [
                ("sum", (float(np.sum(part)), len(part)))
            ],
            reduce_fn=lambda key, values: (
                sum(v[0] for v in values),
                sum(v[1] for v in values),
            ),
            merge_fn=lambda reduced, state: (
                state + 0.5 * (reduced["sum"][0] / reduced["sum"][1] - state)
            ),
        )

    def test_converges_to_fixpoint(self):
        data = np.arange(100.0)
        partitions = list(np.array_split(data, 4))
        engine = self.make_engine()
        result = engine.run(
            partitions,
            initial_state=0.0,
            max_iterations=100,
            converged=lambda old, new: abs(new - old) < 1e-9,
        )
        assert result.converged
        assert result.final_state == pytest.approx(data.mean())
        assert result.iterations < 100

    def test_max_iterations_respected(self):
        data = np.arange(10.0)
        engine = self.make_engine()
        result = engine.run(
            [data], initial_state=0.0, max_iterations=3
        )
        assert result.iterations == 3
        assert not result.converged

    def test_history_kept_when_requested(self):
        engine = self.make_engine()
        result = engine.run(
            [np.arange(10.0)],
            initial_state=0.0,
            max_iterations=5,
            keep_history=True,
        )
        assert len(result.history) == 5

    def test_validation(self):
        engine = self.make_engine()
        with pytest.raises(ValueError):
            engine.run([], initial_state=0.0)
        with pytest.raises(ValueError):
            engine.run([np.arange(3.0)], initial_state=0.0, max_iterations=0)


class TestKMeans:
    def clustered_points(self, seed=0):
        rng = np.random.default_rng(seed)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        return (
            np.concatenate(
                [c + rng.normal(scale=0.4, size=(80, 2)) for c in centers]
            ),
            centers,
        )

    def test_recovers_cluster_centers(self):
        points, truth = self.clustered_points()
        centroids, result = kmeans_mapreduce(points, n_clusters=3, seed=3)
        assert result.converged
        # Each true center matched by some centroid within the noise.
        for center in truth:
            nearest = np.linalg.norm(centroids - center, axis=1).min()
            assert nearest < 0.5

    def test_deterministic(self):
        points, _ = self.clustered_points()
        a, _ = kmeans_mapreduce(points, 3, seed=7)
        b, _ = kmeans_mapreduce(points, 3, seed=7)
        np.testing.assert_allclose(a, b)

    def test_partitioning_invariance(self):
        """Twister's caching contract: the answer must not depend on how
        the static data is partitioned."""
        points, _ = self.clustered_points(seed=1)
        one, _ = kmeans_mapreduce(points, 3, n_partitions=1, seed=5)
        many, _ = kmeans_mapreduce(points, 3, n_partitions=7, seed=5)
        np.testing.assert_allclose(one, many, rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_mapreduce(np.zeros(5), 2)
        with pytest.raises(ValueError):
            kmeans_mapreduce(np.zeros((5, 2)), 6)


class TestTwisterSimulator:
    def test_caching_wins_after_first_iteration(self):
        sim = TwisterAzureSimulator(TwisterSimConfig(n_iterations=10))
        results = sim.compare()
        naive, twister = results["naive"], results["twister"]
        # Iteration 1 pays the static download either way.
        assert twister.first_iteration_seconds == pytest.approx(
            naive.first_iteration_seconds, rel=0.10
        )
        # Steady-state iterations skip the 64 MB static download.
        assert (
            twister.steady_iteration_seconds
            < naive.steady_iteration_seconds * 0.85
        )
        assert twister.total_seconds < naive.total_seconds

    def test_advantage_grows_with_iterations(self):
        short = TwisterAzureSimulator(
            TwisterSimConfig(n_iterations=2)
        ).compare()
        long = TwisterAzureSimulator(
            TwisterSimConfig(n_iterations=20)
        ).compare()

        def saving(results):
            return (
                results["naive"].total_seconds
                / results["twister"].total_seconds
            )

        assert saving(long) > saving(short)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwisterSimConfig(n_workers=0)
        with pytest.raises(ValueError):
            TwisterSimConfig(n_iterations=0)
        with pytest.raises(ValueError):
            TwisterSimConfig(static_partition_bytes=-1)
        sim = TwisterAzureSimulator(TwisterSimConfig())
        with pytest.raises(ValueError):
            sim.run("warp-speed")
        with pytest.raises(KeyError):
            TwisterAzureSimulator(TwisterSimConfig(instance_type="Huge"))
