"""Byte-identical parity for the vectorized app hot paths.

The NumPy rewrites of BLAST k-mer seeding / X-drop extension and Cap3
k-mer seeding must be *indistinguishable* from the scalar loops they
replaced — same probes in the same order, same coordinates, same
scores, same assemblies.  Each reference below is the pre-vectorization
implementation, kept verbatim as an executable specification.
"""

import numpy as np
import pytest

from repro.apps import blast as blast_mod
from repro.apps.blast import (
    AMINO_ACIDS,
    BlastParams,
    LowComplexityFilter,
    _BLOSUM62,
    _encode,
    _query_words,
    _ungapped_extend,
    blast_search,
    mask_low_complexity,
)
from repro.apps.cap3 import Cap3Params, _find_overlaps, _seed_keys, assemble
from repro.apps.fasta import FastaRecord


# -- scalar references (pre-vectorization code, verbatim) -----------------


def _query_words_reference(enc, params):
    k = params.word_size
    base = enc.astype(np.uint8).tobytes()
    masked = None
    if params.low_complexity_filter is not None:
        masked = mask_low_complexity(enc, params.low_complexity_filter)
    probes = []
    for pos in range(0, len(base) - k + 1):
        if masked is not None and masked[pos : pos + k].any():
            continue
        word = base[pos : pos + k]
        probes.append((pos, word))
        if params.neighborhood_threshold is None:
            continue
        exact = sum(int(_BLOSUM62[word[i], word[i]]) for i in range(k))
        for i in range(k):
            original = word[i]
            for replacement in range(len(AMINO_ACIDS)):
                if replacement == original:
                    continue
                score = (
                    exact
                    - int(_BLOSUM62[original, original])
                    + int(_BLOSUM62[original, replacement])
                )
                if score >= params.neighborhood_threshold:
                    variant = bytearray(word)
                    variant[i] = replacement
                    probes.append((pos, bytes(variant)))
    return probes


def _ungapped_extend_reference(query, subject, q_pos, s_pos, word_size, xdrop):
    seed_score = float(
        _BLOSUM62[
            query[q_pos : q_pos + word_size],
            subject[s_pos : s_pos + word_size],
        ].sum()
    )
    best = running = seed_score
    best_right = 0
    i = 0
    while True:
        qi, si = q_pos + word_size + i, s_pos + word_size + i
        if qi >= len(query) or si >= len(subject):
            break
        running += int(_BLOSUM62[query[qi], subject[si]])
        i += 1
        if running > best:
            best, best_right = running, i
        elif best - running > xdrop:
            break
    running = best
    best_left = 0
    i = 0
    while True:
        qi, si = q_pos - 1 - i, s_pos - 1 - i
        if qi < 0 or si < 0:
            break
        running += int(_BLOSUM62[query[qi], subject[si]])
        i += 1
        if running > best:
            best, best_left = running, i
        elif best - running > xdrop:
            break
    q_start = q_pos - best_left
    s_start = s_pos - best_left
    q_end = q_pos + word_size + best_right
    s_end = s_pos + word_size + best_right
    return q_start, q_end, s_start, s_end, best


def _random_protein(rng, length):
    return "".join(AMINO_ACIDS[i] for i in rng.integers(0, 20, size=length))


class TestQueryWordsParity:
    @pytest.mark.parametrize("threshold", [None, 11, 13])
    def test_random_queries(self, threshold):
        rng = np.random.default_rng(7)
        params = BlastParams(neighborhood_threshold=threshold)
        for length in (2, 3, 5, 40, 120):
            enc = _encode(_random_protein(rng, length))
            assert _query_words(enc, params) == _query_words_reference(
                enc, params
            ), (threshold, length)

    def test_with_low_complexity_filter(self):
        rng = np.random.default_rng(8)
        params = BlastParams(
            neighborhood_threshold=11,
            low_complexity_filter=LowComplexityFilter(window=8),
        )
        # Splice in a low-complexity homopolymer run to exercise masking.
        seq = _random_protein(rng, 30) + "A" * 20 + _random_protein(rng, 30)
        enc = _encode(seq)
        probes = _query_words(enc, params)
        assert probes == _query_words_reference(enc, params)
        assert probes  # the unmasked flanks still seed

    def test_fully_masked_query(self):
        params = BlastParams(
            low_complexity_filter=LowComplexityFilter(window=6)
        )
        enc = _encode("A" * 24)
        assert _query_words(enc, params) == []


class TestUngappedExtendParity:
    def test_random_seed_positions(self):
        rng = np.random.default_rng(9)
        for trial in range(200):
            qlen = int(rng.integers(3, 80))
            slen = int(rng.integers(3, 200))
            k = 3
            if qlen < k or slen < k:
                continue
            query = rng.integers(0, 20, size=qlen)
            subject = rng.integers(0, 20, size=slen)
            q_pos = int(rng.integers(0, qlen - k + 1))
            s_pos = int(rng.integers(0, slen - k + 1))
            got = _ungapped_extend(query, subject, q_pos, s_pos, k, 7.0)
            want = _ungapped_extend_reference(
                query, subject, q_pos, s_pos, k, 7.0
            )
            assert got == want, (trial, q_pos, s_pos)

    def test_identical_sequences_extend_fully(self):
        rng = np.random.default_rng(10)
        seq = rng.integers(0, 20, size=50)
        q0, q1, s0, s1, score = _ungapped_extend(seq, seq, 20, 20, 3, 7.0)
        assert (q0, q1) == (0, 50)
        assert (s0, s1) == (0, 50)
        assert score == float(_BLOSUM62[seq, seq].sum())

    def test_boundary_seeds(self):
        # Seeds flush against either end must not wrap or over-read.
        rng = np.random.default_rng(11)
        query = rng.integers(0, 20, size=10)
        subject = rng.integers(0, 20, size=10)
        for q_pos, s_pos in [(0, 0), (0, 7), (7, 0), (7, 7)]:
            assert _ungapped_extend(
                query, subject, q_pos, s_pos, 3, 7.0
            ) == _ungapped_extend_reference(
                query, subject, q_pos, s_pos, 3, 7.0
            )


class TestBlastEndToEnd:
    def test_neighborhood_search_matches_scalar_probe_stream(self):
        """End to end: same hits with neighbourhood words + filtering."""
        from repro.workloads.protein import (
            generate_protein_database,
            generate_query_records,
        )

        db = generate_protein_database(15, seed=21)
        queries = generate_query_records(db, 12, seed=22)
        params = BlastParams(
            neighborhood_threshold=11,
            low_complexity_filter=LowComplexityFilter(),
        )
        results = blast_search(queries, db, params)
        # Pin against a probe-stream-faithful rerun through the
        # reference seeder (monkeypatched), hit for hit.
        original = blast_mod._query_words
        blast_mod._query_words = _query_words_reference
        try:
            reference = blast_search(queries, db, params)
        finally:
            blast_mod._query_words = original
        assert results == reference


class TestCap3SeedParity:
    def test_seed_keys_injective_and_ordered(self):
        rng = np.random.default_rng(12)
        seq = "".join("ACGTN"[i] for i in rng.integers(0, 5, size=200))
        arr = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
        k = 12
        keys = _seed_keys(arr, k)
        byte_windows = [
            seq.encode("ascii")[i : i + k] for i in range(len(seq) - k + 1)
        ]
        assert len(keys) == len(byte_windows)
        # Packed codes must distinguish exactly what the bytes do.
        for i, a in enumerate(byte_windows):
            for j, b in enumerate(byte_windows):
                assert (keys[i] == keys[j]) == (a == b)

    def test_large_k_fallback(self):
        arr = np.frombuffer(b"ACGT" * 20, dtype=np.uint8)
        keys = _seed_keys(arr, 30)
        assert keys[0] == b"ACGT" * 7 + b"AC"
        assert len(keys) == 80 - 30 + 1

    def test_overlap_discovery_unchanged(self):
        """Same overlaps (order included) as the byte-sliced index."""
        from repro.workloads.genome import generate_read_records

        reads = generate_read_records(
            60, read_length=100, rng=np.random.default_rng(13)
        )
        params = Cap3Params()
        arrays = [
            np.frombuffer(r.seq.upper().encode("ascii"), dtype=np.uint8)
            for r in reads
        ]
        overlaps, candidates = _find_overlaps(arrays, params)

        # Reference: the pre-vectorization byte-keyed index, verbatim.
        from repro.apps.cap3 import _verify_overlap

        k = params.kmer_size
        index = {}
        for read_idx, arr in enumerate(arrays):
            seq_bytes = arr.tobytes()
            for pos in range(0, len(seq_bytes) - k + 1):
                index.setdefault(seq_bytes[pos : pos + k], []).append(
                    (read_idx, pos)
                )
        ref_candidates = 0
        ref_best = {}
        for b_idx, b_arr in enumerate(arrays):
            b_bytes = b_arr.tobytes()
            span = max(0, min(params.max_seed_span, len(b_bytes) - k + 1))
            probed = set()
            for s in range(0, span, params.seed_stride):
                seed = b_bytes[s : s + k]
                for a_idx, a_pos in index.get(seed, ()):
                    if a_idx == b_idx:
                        continue
                    a_start = a_pos - s
                    if a_start < 0:
                        continue
                    key = (a_idx, a_start)
                    if key in probed:
                        continue
                    probed.add(key)
                    ref_candidates += 1
                    overlap = _verify_overlap(
                        a_idx, b_idx, arrays[a_idx], b_arr, a_start, params
                    )
                    if overlap is None:
                        continue
                    pair = (a_idx, b_idx)
                    existing = ref_best.get(pair)
                    if existing is None or overlap.score > existing.score:
                        ref_best[pair] = overlap
        assert candidates == ref_candidates
        assert overlaps == list(ref_best.values())

    def test_assembly_end_to_end_stable(self):
        from repro.workloads.genome import generate_read_records

        reads = generate_read_records(
            50,
            read_length=100,
            both_strands=True,
            rng=np.random.default_rng(14),
        )
        result = assemble(reads)
        again = assemble(reads)
        assert [c.seq for c in result.contigs] == [
            c.seq for c in again.contigs
        ]
        assert result.stats == again.stats
        assert result.stats["contigs"] >= 1


class TestFastaConsensusRoundTrip:
    def test_consensus_string_is_ascii_bases(self):
        reads = [
            FastaRecord(id="r1", seq="ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
            FastaRecord(id="r2", seq="ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
        ]
        result = assemble(reads, Cap3Params(min_overlap=12, kmer_size=4))
        for contig in result.contigs:
            assert set(contig.seq) <= set("ACGTN")
