"""Workload artifact store: materialize-once, attach, and parity.

The store must be invisible in every observable way except speed: same
seed → byte-identical artifacts, fresh-generation and store-attached
paths produce identical files and specs, and ``REPRO_NO_CACHE`` opts
out entirely.
"""

import os

import numpy as np
import pytest

from repro.workloads.genome import write_cap3_workload
from repro.workloads.protein import write_blast_workload
from repro.workloads.pubchem import write_gtm_workload
from repro.workloads.store import (
    WorkloadArtifactStore,
    default_artifact_store,
    resolve_store,
)


def _file_bytes(directory):
    return {
        p.name: p.read_bytes()
        for p in sorted((directory / "in").iterdir())
    }


class TestStoreCore:
    def test_materialize_builds_exactly_once(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        calls = []

        def build(target):
            calls.append(target)
            (target / "data.txt").write_text("payload")
            return {"meta": 7}

        a = store.materialize("demo", {"x": 1}, build)
        b = store.materialize("demo", {"x": 1}, build)
        assert len(calls) == 1
        assert a.path == b.path
        assert b.extra == {"meta": 7}
        assert b.files == ("data.txt",)
        assert store.builds == 1 and store.hits == 1

    def test_different_params_different_artifacts(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")

        def build(target):
            (target / "data.txt").write_text("payload")

        a = store.materialize("demo", {"x": 1}, build)
        b = store.materialize("demo", {"x": 2}, build)
        assert a.path != b.path
        assert store.builds == 2

    def test_attach_shares_bytes(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        artifact = store.materialize(
            "demo", {}, lambda t: (t / "data.txt").write_text("shared")
        )
        dest = tmp_path / "dest"
        store.attach(artifact, dest)
        assert (dest / "data.txt").read_text() == "shared"
        # Same filesystem: attach hard-links, one inode for all copies.
        assert (
            os.stat(dest / "data.txt").st_ino
            == os.stat(artifact.file_path("data.txt")).st_ino
        )

    def test_partial_artifact_rebuilds(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")

        def build(target):
            (target / "a.txt").write_text("a")
            (target / "b.txt").write_text("b")

        artifact = store.materialize("demo", {}, build)
        artifact.file_path("b.txt").unlink()  # simulate corruption
        again = store.materialize("demo", {}, build)
        assert again.file_path("b.txt").read_text() == "b"
        assert store.builds == 2

    def test_clear_and_stats(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        store.materialize(
            "demo", {"x": 1}, lambda t: (t / "d.txt").write_text("x")
        )
        store.materialize(
            "demo", {"x": 2}, lambda t: (t / "d.txt").write_text("y")
        )
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestPolicy:
    def test_no_cache_disables_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert default_artifact_store() is None
        assert resolve_store("auto") is None

    def test_cache_dir_relocates_store(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        store = default_artifact_store()
        assert store.root == tmp_path / "c" / "workloads"

    def test_store_is_sibling_of_result_cache(self, tmp_path):
        store = default_artifact_store(tmp_path)
        assert store.root == tmp_path / "workloads"

    def test_resolve_passthrough_and_none(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(None) is None


@pytest.mark.parametrize("app", ["cap3", "blast", "gtm"])
class TestGeneratorParity:
    """Same seed → byte-identical artifacts; fresh vs store paths agree."""

    def _write(self, app, directory, store):
        if app == "cap3":
            return write_cap3_workload(
                directory, 3, reads_per_file=8, seed=5, store=store
            )
        if app == "blast":
            specs, _db = write_blast_workload(
                directory, 2, queries_per_file=4, db_sequences=10, seed=5,
                store=store,
            )
            return specs
        specs, _sample = write_gtm_workload(
            directory, 2, points_per_file=50, dimensions=6,
            sample_points=40, seed=5, store=store,
        )
        return specs

    def test_same_seed_is_byte_identical(self, app, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        self._write(app, tmp_path / "one", store)
        self._write(app, tmp_path / "two", store)
        assert _file_bytes(tmp_path / "one") == _file_bytes(tmp_path / "two")
        assert store.builds == 1 and store.hits == 1

    def test_fresh_and_store_paths_agree(self, app, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        fresh_specs = self._write(app, tmp_path / "fresh", None)
        # Run the store path twice: a cold build and a warm attach must
        # both match in-place generation byte for byte.
        cold_specs = self._write(app, tmp_path / "cold", store)
        warm_specs = self._write(app, tmp_path / "warm", store)
        fresh = _file_bytes(tmp_path / "fresh")
        cold = _file_bytes(tmp_path / "cold")
        warm = _file_bytes(tmp_path / "warm")
        # The store path may add shared auxiliary files (database.fa,
        # sample.npy); every file the fresh path wrote must match.
        for name, data in fresh.items():
            assert cold[name] == data, name
            assert warm[name] == data, name
        assert cold == warm

        def comparable(specs):
            return [
                (s.task_id, os.path.basename(s.input_key), s.input_size,
                 s.output_size, s.work_units)
                for s in specs
            ]

        assert comparable(fresh_specs) == comparable(cold_specs)
        assert comparable(cold_specs) == comparable(warm_specs)


class TestReturnedAuxiliaries:
    def test_blast_db_identical_on_hit(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        _, cold_db = write_blast_workload(
            tmp_path / "a", 2, queries_per_file=4, db_sequences=10,
            seed=3, store=store,
        )
        _, warm_db = write_blast_workload(
            tmp_path / "b", 2, queries_per_file=4, db_sequences=10,
            seed=3, store=store,
        )
        assert warm_db.ids == cold_db.ids
        assert warm_db.seqs == cold_db.seqs
        assert warm_db.index == cold_db.index

    def test_gtm_sample_identical_and_readonly(self, tmp_path):
        store = WorkloadArtifactStore(tmp_path / "store")
        _, fresh = write_gtm_workload(
            tmp_path / "a", 2, points_per_file=20, dimensions=4,
            sample_points=30, seed=3, store=None,
        )
        _, shared = write_gtm_workload(
            tmp_path / "b", 2, points_per_file=20, dimensions=4,
            sample_points=30, seed=3, store=store,
        )
        assert np.array_equal(fresh, shared)
        # Attached samples are memory-mapped read-only.
        with pytest.raises(ValueError):
            shared[0, 0] = 1.0
