"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.apps.fasta import read_fasta
from repro.workloads.genome import (
    cap3_task_specs,
    generate_genome,
    generate_read_records,
    write_cap3_workload,
)
from repro.workloads.protein import (
    blast_task_specs,
    generate_protein_database,
    generate_query_records,
    write_blast_workload,
)
from repro.workloads.pubchem import (
    PUBCHEM_DIMENSIONS,
    generate_pubchem_points,
    gtm_task_specs,
    write_gtm_workload,
)


class TestGenomeWorkloads:
    def test_generate_genome(self):
        genome = generate_genome(1000, np.random.default_rng(0))
        assert len(genome) == 1000
        assert set(genome) <= set("ACGT")

    def test_generate_genome_validation(self):
        with pytest.raises(ValueError):
            generate_genome(0, np.random.default_rng(0))

    def test_read_records_shape(self):
        reads = generate_read_records(50, read_length=100)
        assert len(reads) == 50
        assert all(len(r.seq) == 100 for r in reads)
        assert len({r.id for r in reads}) == 50

    def test_reads_cover_genome_with_overlaps(self):
        """Coverage 8 means reads overlap heavily — assemblable."""
        reads = generate_read_records(
            80, read_length=100, coverage=8.0, rng=np.random.default_rng(1)
        )
        from repro.apps.cap3 import assemble

        result = assemble(reads)
        # Dense shotgun coverage must produce few contigs, not 80 singletons.
        assert result.stats["contigs"] >= 1
        assert result.stats["singletons"] < 10

    def test_poor_ends_present(self):
        reads = generate_read_records(
            100, poor_end_fraction=1.0, rng=np.random.default_rng(2)
        )
        assert all(r.seq[-1].islower() for r in reads)

    def test_cap3_specs_homogeneous(self):
        specs = cap3_task_specs(10, reads_per_file=458)
        assert len(specs) == 10
        assert all(s.work_units == 458.0 for s in specs)
        assert all(s.input_size > 100_000 for s in specs)  # hundreds of KB
        assert len({s.task_id for s in specs}) == 10

    def test_cap3_specs_inhomogeneous_varies(self):
        specs = cap3_task_specs(50, reads_per_file=458, inhomogeneous=True)
        works = {s.work_units for s in specs}
        assert len(works) > 10
        mean = sum(s.work_units for s in specs) / len(specs)
        assert 0.6 * 458 < mean < 1.6 * 458

    def test_write_cap3_workload_real_files(self, tmp_path):
        specs = write_cap3_workload(tmp_path, 3, reads_per_file=8)
        for spec in specs:
            records = read_fasta(spec.input_key)
            assert len(records) == 8
            assert spec.input_size > 0

    def test_replicated_files_identical(self, tmp_path):
        specs = write_cap3_workload(tmp_path, 3, reads_per_file=8, replicated=True)
        contents = {open(s.input_key).read() for s in specs}
        assert len(contents) == 1

    def test_unreplicated_files_differ(self, tmp_path):
        specs = write_cap3_workload(
            tmp_path, 3, reads_per_file=8, replicated=False
        )
        contents = {open(s.input_key).read() for s in specs}
        assert len(contents) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            cap3_task_specs(0)
        with pytest.raises(ValueError):
            generate_read_records(0)


class TestProteinWorkloads:
    def test_database_generation(self):
        db = generate_protein_database(20, seed=1)
        assert len(db) == 20
        assert db.total_residues > 20 * 50

    def test_query_records_mix(self):
        db = generate_protein_database(10, seed=2)
        queries = generate_query_records(db, 40, homolog_fraction=0.5, seed=3)
        homologs = [q for q in queries if q.description.startswith("homolog")]
        decoys = [q for q in queries if q.description == "decoy"]
        assert len(homologs) + len(decoys) == 40
        assert 8 <= len(homologs) <= 32  # ~half, binomial spread

    def test_planted_homologs_findable(self):
        from repro.apps.blast import blast_search

        db = generate_protein_database(15, seed=4)
        queries = generate_query_records(
            db, 20, homolog_fraction=1.0, identity=0.85, seed=5
        )
        results = blast_search(queries, db)
        found = sum(1 for hits in results.values() if hits)
        assert found >= 15  # most homologs recovered

    def test_blast_specs_match_paper_sizes(self):
        specs = blast_task_specs(64)
        assert all(7_000 <= s.input_size < 8_193 for s in specs)
        assert all(s.work_units > 0 for s in specs)

    def test_replicated_base_set_work_profile(self):
        """Files beyond the 128-file base replicate its work profile."""
        specs = blast_task_specs(256, base_set_size=128)
        works = [s.work_units for s in specs]
        assert works[0] == works[128]
        assert works[5] == works[133]

    def test_homogeneous_option(self):
        specs = blast_task_specs(16, inhomogeneous_base=False)
        assert len({s.work_units for s in specs}) == 1

    def test_write_blast_workload(self, tmp_path):
        specs, db = write_blast_workload(
            tmp_path, 2, queries_per_file=4, db_sequences=10
        )
        assert len(specs) == 2
        assert len(db) == 10
        for spec in specs:
            assert len(read_fasta(spec.input_key)) == 4


class TestPubchemWorkloads:
    def test_points_shape_and_dimensions(self):
        points = generate_pubchem_points(500, seed=1)
        assert points.shape == (500, PUBCHEM_DIMENSIONS)

    def test_points_are_clustered(self):
        points = generate_pubchem_points(
            1000, n_clusters=4, cluster_scale=10.0, noise_scale=0.5, seed=2
        )
        # Clustered data has much higher variance than its noise floor.
        assert points.std() > 1.5

    def test_gtm_specs_match_paper_setup(self):
        specs = gtm_task_specs()
        assert len(specs) == 264
        assert all(s.work_units == 100.0 for s in specs)  # 100k points
        total_points = sum(s.work_units for s in specs) * 1000
        assert total_points == pytest.approx(26.4e6)  # ~26M points
        # Output orders of magnitude smaller than input.
        assert all(s.output_size < s.input_size / 20 for s in specs)

    def test_write_gtm_workload(self, tmp_path):
        specs, sample = write_gtm_workload(
            tmp_path, 2, points_per_file=50, dimensions=6, sample_points=40
        )
        assert sample.shape == (40, 6)
        for spec in specs:
            with np.load(spec.input_key) as archive:
                assert archive["points"].shape == (50, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_pubchem_points(0)
        with pytest.raises(ValueError):
            generate_pubchem_points(10, n_clusters=0)
        with pytest.raises(ValueError):
            gtm_task_specs(n_files=0)
